(* The verification service (lib/service): protocol round-trips and
   structured errors, the bounded admission queue, and live servers on
   throwaway Unix sockets — overload rejection, deadline expiry, and the
   no-drop guarantee of graceful drain. *)

module Sproto = Dda_service.Protocol
module Squeue = Dda_service.Queue
module Server = Dda_service.Server
module Client = Dda_service.Client
module Store = Dda_batch.Store
module Batch = Dda_batch.Batch
module Spec = Dda_batch.Spec

let contains needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

(* --- scratch dirs and sockets ---------------------------------------------- *)

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "dda_test_svc.%d.%d" (Unix.getpid ()) !dir_counter)
  in
  Unix.mkdir d 0o700;
  d

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

(* A server on a throwaway socket; drained and awaited on the way out so no
   worker domain survives the test. *)
let with_server cfg f =
  let dir = fresh_dir () in
  let sock = Filename.concat dir "s.sock" in
  let cfg = { cfg with Server.addresses = [ Sproto.Unix_socket sock ] } in
  match Server.start cfg with
  | Error e -> Alcotest.failf "server failed to start: %s" e
  | Ok srv ->
    Fun.protect
      ~finally:(fun () ->
        Server.drain srv;
        ignore (Server.wait srv);
        rm_rf dir)
      (fun () -> f sock srv)

(* ~0.2s of real exploration — long enough to hold a worker while a burst
   arrives, short enough to keep the suite quick *)
let slow_job =
  {
    Batch.protocol = "weak-majority-bounded:2";
    graph = "line:abbab";
    regime = Spec.Pseudo_stochastic;
    max_configs = 4_000_000;
  }

let quick_job =
  {
    Batch.protocol = "exists:a";
    graph = "cycle:abb";
    regime = Spec.Pseudo_stochastic;
    max_configs = 10_000;
  }

let decide_of ?deadline_ms ?trace ~id (job : Batch.job) =
  Sproto.Decide
    {
      Sproto.id;
      protocol = job.Batch.protocol;
      graph = job.Batch.graph;
      regime = job.Batch.regime;
      max_configs = job.Batch.max_configs;
      deadline_ms;
      trace;
    }

(* --- protocol: round-trips --------------------------------------------------- *)

let test_request_roundtrip () =
  let d =
    {
      Sproto.id = "r-1";
      protocol = "threshold:a,2";
      graph = "cycle:aab";
      regime = Spec.Adversarial;
      max_configs = 5000;
      deadline_ms = Some 250;
      trace = Some "t-42";
    }
  in
  (match Sproto.parse_request (Sproto.request_to_json (Sproto.Decide d)) with
  | Ok (Sproto.Decide d') ->
    Alcotest.(check string) "id" d.Sproto.id d'.Sproto.id;
    Alcotest.(check string) "protocol" d.Sproto.protocol d'.Sproto.protocol;
    Alcotest.(check string) "graph" d.Sproto.graph d'.Sproto.graph;
    Alcotest.(check bool) "regime" true (d'.Sproto.regime = Spec.Adversarial);
    Alcotest.(check int) "max_configs" 5000 d'.Sproto.max_configs;
    Alcotest.(check (option int)) "deadline" (Some 250) d'.Sproto.deadline_ms
  | Ok _ -> Alcotest.fail "decide parsed as something else"
  | Error e -> Alcotest.failf "decide round-trip failed: %s" e.Sproto.err_reason);
  (match Sproto.parse_request (Sproto.request_to_json (Sproto.Ping "p-7")) with
  | Ok (Sproto.Ping id) -> Alcotest.(check string) "ping id" "p-7" id
  | _ -> Alcotest.fail "ping round-trip failed");
  (* defaults: no regime/max_configs/deadline in the document *)
  match
    Sproto.parse_request ~default_max_configs:777
      {|{"schema":"dda.service/1","id":"d","op":"decide","protocol":"exists:a","graph":"cycle:abb"}|}
  with
  | Ok (Sproto.Decide d) ->
    Alcotest.(check bool) "default regime F" true (d.Sproto.regime = Spec.Pseudo_stochastic);
    Alcotest.(check int) "default budget" 777 d.Sproto.max_configs;
    Alcotest.(check (option int)) "no deadline" None d.Sproto.deadline_ms
  | _ -> Alcotest.fail "defaulting decide failed"

let response_roundtrip status =
  let r = { Sproto.rid = "x-1"; status; queue_ms = 1.5; total_ms = 3.25 } in
  match Sproto.parse_response (Sproto.response_to_json r) with
  | Ok r' ->
    Alcotest.(check string) "rid" "x-1" r'.Sproto.rid;
    Alcotest.(check string) "status kind" (Sproto.status_name status)
      (Sproto.status_name r'.Sproto.status)
  | Error e -> Alcotest.failf "%s response does not round-trip: %s" (Sproto.status_name status) e

let test_response_roundtrip () =
  response_roundtrip
    (Sproto.Verdict { verdict = "accepts"; cached = true; configs = 42; seconds = 0.007 });
  response_roundtrip (Sproto.Bounded { reason = "deadline"; configs = 0 });
  response_roundtrip (Sproto.Rejected "queue_full");
  response_roundtrip (Sproto.Error "graph: bad spec");
  response_roundtrip Sproto.Pong;
  (* payload fields survive *)
  match
    Sproto.parse_response
      (Sproto.response_to_json
         {
           Sproto.rid = "v";
           status = Sproto.Verdict { verdict = "rejects"; cached = true; configs = 9; seconds = 0.5 };
           queue_ms = 0.;
           total_ms = 1.;
         })
  with
  | Ok { Sproto.status = Sproto.Verdict v; _ } ->
    Alcotest.(check string) "verdict" "rejects" v.verdict;
    Alcotest.(check bool) "cached" true v.cached;
    Alcotest.(check int) "configs" 9 v.configs
  | _ -> Alcotest.fail "verdict payload lost"

let test_protocol_rejects () =
  let err line =
    match Sproto.parse_request line with
    | Ok _ -> Alcotest.failf "expected %S to be rejected" line
    | Error e -> e
  in
  let e = err "not json at all" in
  Alcotest.(check bool) "malformed JSON reported" true (contains "malformed JSON" e.Sproto.err_reason);
  Alcotest.(check string) "no id recoverable" "" e.Sproto.err_id;
  let e = err {|{"schema":"dda.service/9","id":"z","op":"ping"}|} in
  Alcotest.(check bool) "unsupported schema reported" true
    (contains "unsupported schema" e.Sproto.err_reason);
  Alcotest.(check string) "id recovered from bad-schema request" "z" e.Sproto.err_id;
  let e = err {|{"id":"y","op":"ping"}|} in
  Alcotest.(check bool) "missing schema reported" true (contains "schema" e.Sproto.err_reason);
  let e = err {|{"schema":"dda.service/1","id":"u","op":"frobnicate"}|} in
  Alcotest.(check bool) "unknown op reported" true (contains "unknown op" e.Sproto.err_reason);
  let e =
    err {|{"schema":"dda.service/1","id":"m","op":"decide","graph":"cycle:abb"}|}
  in
  Alcotest.(check bool) "missing protocol reported" true (contains "protocol" e.Sproto.err_reason);
  let e =
    err
      {|{"schema":"dda.service/1","id":"b","op":"decide","protocol":"exists:a","graph":"cycle:abb","max_configs":-5}|}
  in
  Alcotest.(check bool) "bad budget reported" true (contains "max_configs" e.Sproto.err_reason);
  let e =
    err
      {|{"schema":"dda.service/1","id":"b","op":"decide","protocol":"exists:a","graph":"cycle:abb","deadline_ms":"soon"}|}
  in
  Alcotest.(check bool) "bad deadline reported" true (contains "deadline_ms" e.Sproto.err_reason)

let test_parse_address () =
  (match Sproto.parse_address "/tmp/x" with
  | Ok (Sproto.Unix_socket p) -> Alcotest.(check string) "path" "/tmp/x" p
  | _ -> Alcotest.fail "slash path is a unix socket");
  (match Sproto.parse_address "dda.sock" with
  | Ok (Sproto.Unix_socket _) -> ()
  | _ -> Alcotest.fail ".sock suffix is a unix socket");
  (match Sproto.parse_address "localhost:7777" with
  | Ok (Sproto.Tcp (h, p)) ->
    Alcotest.(check string) "host" "localhost" h;
    Alcotest.(check int) "port" 7777 p
  | _ -> Alcotest.fail "HOST:PORT is tcp");
  (match Sproto.parse_address "bare-name" with
  | Ok (Sproto.Unix_socket _) -> ()
  | _ -> Alcotest.fail "bare name defaults to a unix socket");
  (match Sproto.parse_address "[::1]:7777" with
  | Ok (Sproto.Tcp (h, p)) ->
    Alcotest.(check string) "v6 host" "::1" h;
    Alcotest.(check int) "v6 port" 7777 p
  | _ -> Alcotest.fail "bracketed IPv6 literal is tcp");
  Alcotest.(check bool) "empty rejected" true (Result.is_error (Sproto.parse_address ""));
  Alcotest.(check bool) "bad port rejected" true (Result.is_error (Sproto.parse_address "host:0"));
  Alcotest.(check bool) "no host rejected" true (Result.is_error (Sproto.parse_address ":99"));
  Alcotest.(check bool) "v6 without port rejected" true
    (Result.is_error (Sproto.parse_address "[::1]"));
  Alcotest.(check bool) "v6 with bad port rejected" true
    (Result.is_error (Sproto.parse_address "[::1]:x"))

(* --- the admission queue ----------------------------------------------------- *)

let test_queue_admission () =
  let q = Squeue.create ~capacity:2 in
  Alcotest.(check int) "capacity" 2 (Squeue.capacity q);
  (match Squeue.try_push q 1 with `Ok d -> Alcotest.(check int) "depth 1" 1 d | _ -> Alcotest.fail "push 1");
  (match Squeue.try_push q 2 with `Ok d -> Alcotest.(check int) "depth 2" 2 d | _ -> Alcotest.fail "push 2");
  (match Squeue.try_push q 3 with
  | `Full -> ()
  | _ -> Alcotest.fail "third push must hit the admission bound");
  Alcotest.(check (option int)) "fifo pop" (Some 1) (Squeue.pop q);
  (match Squeue.try_push q 4 with `Ok _ -> () | _ -> Alcotest.fail "room again after pop");
  Squeue.force_push q 5;
  Alcotest.(check int) "force_push goes past capacity" 3 (Squeue.length q);
  Squeue.close_intake q;
  (match Squeue.try_push q 6 with
  | `Closed -> ()
  | _ -> Alcotest.fail "try_push after close_intake");
  Squeue.force_push q 7 (* stragglers still land *);
  Squeue.close q;
  let rec drain acc = match Squeue.pop q with None -> List.rev acc | Some x -> drain (x :: acc) in
  Alcotest.(check (list int)) "close drains in order then ends" [ 2; 4; 5; 7 ] (drain [])

let test_queue_cross_thread () =
  let q = Squeue.create ~capacity:1024 in
  let seen = ref 0 in
  let consumer =
    Thread.create
      (fun () ->
        let rec loop () = match Squeue.pop q with None -> () | Some _ -> incr seen; loop () in
        loop ())
      ()
  in
  for i = 1 to 500 do
    Squeue.force_push q i
  done;
  (* close wakes the blocked consumer after the backlog drains *)
  Squeue.close q;
  Thread.join consumer;
  Alcotest.(check int) "all items consumed" 500 !seen

(* --- live servers ------------------------------------------------------------ *)

let rpc_exn c req =
  match Client.rpc c req with
  | Ok r -> r
  | Error e -> Alcotest.failf "rpc failed: %s" e

let test_serve_cold_then_warm () =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let store () = Store.open_ ~root:(Filename.concat dir "cache") () in
  let first =
    with_server { Server.default_config with cache = Some (store ()) } (fun sock srv ->
        let c = Result.get_ok (Client.connect (Sproto.Unix_socket sock)) in
        (match rpc_exn c (decide_of ~id:"q1" quick_job) with
        | { Sproto.status = Sproto.Verdict v; _ } ->
          Alcotest.(check string) "verdict" "accepts" v.verdict;
          Alcotest.(check bool) "cold is computed" false v.cached
        | r -> Alcotest.failf "unexpected status %s" (Sproto.status_name r.Sproto.status));
        (match rpc_exn c (decide_of ~id:"q2" quick_job) with
        | { Sproto.status = Sproto.Verdict v; _ } ->
          Alcotest.(check bool) "second request is a cache hit" true v.cached
        | r -> Alcotest.failf "unexpected status %s" (Sproto.status_name r.Sproto.status));
        (match rpc_exn c (Sproto.Ping "p") with
        | { Sproto.status = Sproto.Pong; _ } -> ()
        | _ -> Alcotest.fail "ping over the wire");
        Client.close c;
        Server.stats srv)
  in
  Alcotest.(check int) "accepted" 2 first.Server.accepted;
  Alcotest.(check int) "served" 2 first.Server.served;
  Alcotest.(check int) "hits" 1 first.Server.hits;
  Alcotest.(check int) "computed" 1 first.Server.computed;
  (* the cache outlives the server: a fresh instance answers warm *)
  with_server { Server.default_config with cache = Some (store ()) } (fun sock _srv ->
      let c = Result.get_ok (Client.connect (Sproto.Unix_socket sock)) in
      (match rpc_exn c (decide_of ~id:"q3" quick_job) with
      | { Sproto.status = Sproto.Verdict v; _ } ->
        Alcotest.(check bool) "warm across restarts" true v.cached
      | r -> Alcotest.failf "unexpected status %s" (Sproto.status_name r.Sproto.status));
      Client.close c)

(* Raw socket access, for pipelining bursts and sending garbage. *)
let raw_connect sock =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock);
  (fd, Unix.in_channel_of_descr fd)

let raw_send fd lines =
  let s = String.concat "" (List.map (fun l -> l ^ "\n") lines) in
  let n = String.length s in
  let rec go off = if off < n then go (off + Unix.write_substring fd s off (n - off)) in
  go 0

let raw_read_responses ic n =
  List.init n (fun _ ->
      match Sproto.parse_response (input_line ic) with
      | Ok r -> r
      | Error e -> Alcotest.failf "unparsable response: %s" e)

let test_malformed_over_wire () =
  with_server { Server.default_config with workers = 1 } (fun sock srv ->
      let fd, ic = raw_connect sock in
      raw_send fd [ "this is not json" ];
      (match raw_read_responses ic 1 with
      | [ { Sproto.status = Sproto.Error reason; Sproto.rid = ""; _ } ] ->
        Alcotest.(check bool) "reason names malformed JSON" true (contains "malformed JSON" reason)
      | _ -> Alcotest.fail "garbage must produce a structured error response");
      raw_send fd [ {|{"schema":"dda.service/9","id":"old","op":"ping"}|} ];
      (match raw_read_responses ic 1 with
      | [ { Sproto.status = Sproto.Error reason; Sproto.rid = "old"; _ } ] ->
        Alcotest.(check bool) "reason names the schema" true (contains "unsupported schema" reason)
      | _ -> Alcotest.fail "version mismatch must produce a structured error with the id");
      (* the connection survives bad input *)
      raw_send fd [ Sproto.request_to_json (Sproto.Ping "still-here") ];
      (match raw_read_responses ic 1 with
      | [ { Sproto.status = Sproto.Pong; Sproto.rid = "still-here"; _ } ] -> ()
      | _ -> Alcotest.fail "connection must survive malformed input");
      Unix.close fd;
      let s = Server.stats srv in
      Alcotest.(check int) "two protocol errors counted" 2 s.Server.errors)

let test_queue_full_rejection () =
  with_server
    { Server.default_config with workers = 1; queue_capacity = 2; conn_limit = 64 }
    (fun sock srv ->
      let fd, ic = raw_connect sock in
      let burst =
        List.init 10 (fun i -> Sproto.request_to_json (decide_of ~id:(Printf.sprintf "b%d" i) slow_job))
      in
      raw_send fd burst;
      let responses = raw_read_responses ic 10 in
      let count p = List.length (List.filter p responses) in
      let rejected_full =
        count (fun r -> match r.Sproto.status with Sproto.Rejected "queue_full" -> true | _ -> false)
      in
      let ok = count (fun r -> match r.Sproto.status with Sproto.Verdict _ -> true | _ -> false) in
      Alcotest.(check int) "every request is answered" 10 (List.length responses);
      Alcotest.(check bool) "saturating burst is rejected with queue_full" true (rejected_full > 0);
      Alcotest.(check bool) "admitted requests still complete" true (ok > 0);
      Alcotest.(check int) "admitted + rejected account for the burst" 10 (ok + rejected_full);
      Unix.close fd;
      let s = Server.stats srv in
      Alcotest.(check int) "stats agree on rejections" rejected_full s.Server.rejected;
      Alcotest.(check bool) "admissions bounded by the queue" true (s.Server.accepted <= 3))

let test_conn_limit_rejection () =
  with_server
    { Server.default_config with workers = 1; queue_capacity = 64; conn_limit = 2 }
    (fun sock _srv ->
      let fd, ic = raw_connect sock in
      let burst =
        List.init 8 (fun i -> Sproto.request_to_json (decide_of ~id:(Printf.sprintf "c%d" i) slow_job))
      in
      raw_send fd burst;
      let responses = raw_read_responses ic 8 in
      let limited =
        List.length
          (List.filter
             (fun r ->
               match r.Sproto.status with Sproto.Rejected "connection_limit" -> true | _ -> false)
             responses)
      in
      Alcotest.(check bool) "per-connection limit enforced" true (limited > 0);
      Unix.close fd)

let test_deadline_expires_queued () =
  with_server { Server.default_config with workers = 1 } (fun sock _srv ->
      let fd, ic = raw_connect sock in
      (* the slow job occupies the only worker; the quick one's 1ms deadline
         is long gone when a worker finally picks it up *)
      raw_send fd
        [
          Sproto.request_to_json (decide_of ~id:"slow" slow_job);
          Sproto.request_to_json (decide_of ~id:"urgent" ~deadline_ms:1 quick_job);
        ];
      let responses = raw_read_responses ic 2 in
      let by_id id = List.find (fun r -> r.Sproto.rid = id) responses in
      (match (by_id "slow").Sproto.status with
      | Sproto.Verdict _ -> ()
      | s -> Alcotest.failf "slow request should complete, got %s" (Sproto.status_name s));
      (match (by_id "urgent").Sproto.status with
      | Sproto.Bounded b ->
        Alcotest.(check string) "deadline expiry is a bounded-out" "deadline" b.reason
      | s -> Alcotest.failf "expired request should bound out, got %s" (Sproto.status_name s));
      Unix.close fd)

(* A client that hangs up while its request is still computing: the reader
   sees EOF with work in flight, so the fd must stay open (and un-recycled)
   until the dispatcher retires the request, and the server must neither
   crash nor leak the admission slot. *)
let test_hangup_mid_request () =
  with_server { Server.default_config with workers = 1 } (fun sock srv ->
      let fd, _ic = raw_connect sock in
      raw_send fd [ Sproto.request_to_json (decide_of ~id:"gone" slow_job) ];
      (* let the connection thread admit it, then pull the plug while the
         worker is still exploring *)
      Thread.delay 0.05;
      Unix.close fd;
      let deadline = Unix.gettimeofday () +. 10. in
      let rec wait_served () =
        let s = Server.stats srv in
        if s.Server.served >= 1 then s
        else if Unix.gettimeofday () > deadline then
          Alcotest.fail "admitted request never retired after client hangup"
        else begin
          Thread.delay 0.02;
          wait_served ()
        end
      in
      let s = wait_served () in
      Alcotest.(check int) "admitted" 1 s.Server.accepted;
      Alcotest.(check int) "retired (only the reply is lost)" 1 s.Server.served)

(* One worker, one connection, a burst of identical cold misses: exactly
   one computation runs; the rest coalesce onto it and come back as cache
   hits. *)
let test_coalesced_misses () =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let store = Store.open_ ~root:(Filename.concat dir "cache") () in
  with_server
    { Server.default_config with cache = Some store; workers = 1; conn_limit = 16 }
    (fun sock srv ->
      let fd, ic = raw_connect sock in
      let burst =
        List.init 6 (fun i ->
            Sproto.request_to_json (decide_of ~id:(Printf.sprintf "co%d" i) slow_job))
      in
      raw_send fd burst;
      let responses = raw_read_responses ic 6 in
      List.iter
        (fun r ->
          match r.Sproto.status with
          | Sproto.Verdict _ -> ()
          | s -> Alcotest.failf "%s: expected a verdict, got %s" r.Sproto.rid (Sproto.status_name s))
        responses;
      let cached =
        List.length
          (List.filter
             (fun r -> match r.Sproto.status with Sproto.Verdict v -> v.cached | _ -> false)
             responses)
      in
      Alcotest.(check int) "five answered from the one computation" 5 cached;
      Unix.close fd;
      (* the last response line can reach us before its stats update lands *)
      let deadline = Unix.gettimeofday () +. 5. in
      let rec settled () =
        let s = Server.stats srv in
        if s.Server.served >= 6 || Unix.gettimeofday () > deadline then s
        else begin
          Thread.delay 0.01;
          settled ()
        end
      in
      let s = settled () in
      Alcotest.(check int) "computed once" 1 s.Server.computed;
      Alcotest.(check int) "hits" 5 s.Server.hits)

let test_drain_no_drop () =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let sock = Filename.concat dir "s.sock" in
  let cfg =
    {
      Server.default_config with
      addresses = [ Sproto.Unix_socket sock ];
      workers = 2;
      conn_limit = 16;
    }
  in
  let srv = match Server.start cfg with Ok s -> s | Error e -> Alcotest.fail e in
  let fd, ic = raw_connect sock in
  let burst =
    List.init 6 (fun i -> Sproto.request_to_json (decide_of ~id:(Printf.sprintf "d%d" i) slow_job))
  in
  raw_send fd burst;
  (* let the connection thread admit the burst, then pull the plug *)
  Thread.delay 0.1;
  Server.drain srv;
  Alcotest.(check bool) "draining" true (Server.draining srv);
  let s = Server.wait srv in
  Alcotest.(check int) "everything admitted" 6 s.Server.accepted;
  Alcotest.(check int) "no accepted request dropped" s.Server.accepted s.Server.served;
  (* every response was written before wait returned *)
  let responses = raw_read_responses ic 6 in
  List.iter
    (fun r ->
      match r.Sproto.status with
      | Sproto.Verdict _ -> ()
      | st -> Alcotest.failf "%s: expected a verdict after drain, got %s" r.Sproto.rid
                (Sproto.status_name st))
    responses;
  Unix.close fd;
  (* the listener is gone: new connections are refused *)
  (match Client.connect (Sproto.Unix_socket sock) with
  | Ok c ->
    Client.close c;
    Alcotest.fail "connect must fail after drain"
  | Error _ -> ())

(* regression: glibc select() silently ignores fds >= FD_SETSIZE (1024),
   so a connection cap that could push descriptors past it must be a
   clear startup error, never a wedged loop *)
let test_max_connections_clamp () =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let sock = Filename.concat dir "s.sock" in
  let cfg =
    {
      Server.default_config with
      addresses = [ Sproto.Unix_socket sock ];
      max_connections = 5000;
    }
  in
  (match Server.start cfg with
  | Ok srv ->
    Server.drain srv;
    ignore (Server.wait srv);
    Alcotest.fail "a cap past FD_SETSIZE must fail startup"
  | Error e ->
    Alcotest.(check bool) (Printf.sprintf "error names the budget (%s)" e) true
      (contains "FD_SETSIZE" e));
  (* the largest admissible cap still starts *)
  let ok_cap =
    Dda_service.Evloop.fd_setsize - Dda_service.Evloop.fd_headroom - 3 (* 1 listener + wake pipe *)
  in
  match Server.start { cfg with max_connections = ok_cap } with
  | Error e -> Alcotest.failf "cap %d must start: %s" ok_cap e
  | Ok srv ->
    Server.drain srv;
    ignore (Server.wait srv)

(* regression: a peer that completes the TCP handshake (via the kernel
   backlog of a bound-but-never-accepting listener) but never speaks used
   to hang [Client.connect ~version:2] forever in the negotiation read;
   [?timeout] must bound the whole call *)
let test_connect_timeout () =
  let lfd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close lfd with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.setsockopt lfd Unix.SO_REUSEADDR true;
  Unix.bind lfd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen lfd 1;
  let port =
    match Unix.getsockname lfd with Unix.ADDR_INET (_, p) -> p | _ -> assert false
  in
  let mono = Dda_telemetry.Telemetry.monotonic in
  let t0 = mono () in
  (match Client.connect ~version:2 ~timeout:0.3 (Sproto.Tcp ("127.0.0.1", port)) with
  | Ok c ->
    Client.close c;
    Alcotest.fail "connect must not succeed against a silent peer"
  | Error e ->
    Alcotest.(check bool) (Printf.sprintf "error mentions the timeout (%s)" e) true
      (contains "timed out" e));
  let dt = mono () -. t0 in
  Alcotest.(check bool) (Printf.sprintf "returned promptly (%.2fs)" dt) true (dt < 5.);
  (* a live server inside the budget still connects *)
  with_server { Server.default_config with workers = 1 } (fun sock _srv ->
      match Client.connect ~version:2 ~timeout:2. (Sproto.Unix_socket sock) with
      | Ok c ->
        (match Client.ping c with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "ping over timed connect: %s" e);
        Client.close c
      | Error e -> Alcotest.failf "timed connect to a live server: %s" e)

(* regression: on Linux a non-blocking connect to a unix socket whose
   listen backlog is full fails with EAGAIN — there is no pending attempt.
   Folding that into the EINPROGRESS wait made [connect ~timeout] report
   success on an unconnected socket (select: writable, getsockopt_error:
   nothing), and the failure resurfaced later as a baffling ENOTCONN.
   It must be a prompt hard error instead. *)
let test_unix_backlog_full () =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir)
  @@ fun () ->
  let sock = Filename.concat dir "full.sock" in
  let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close lfd with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.bind lfd (Unix.ADDR_UNIX sock);
  Unix.listen lfd 0;  (* bound but never accepting: the backlog fills at once *)
  let mono = Dda_telemetry.Telemetry.monotonic in
  let t0 = mono () in
  let pending = ref [] in
  let failure = ref None in
  (* each connect either parks in the kernel backlog (Ok) or — once the
     backlog is full — must fail immediately, well before the timeout *)
  Fun.protect ~finally:(fun () -> List.iter Client.close !pending)
  @@ fun () ->
  for _ = 1 to 32 do
    if !failure = None then
      match Client.connect ~timeout:5.0 (Sproto.Unix_socket sock) with
      | Ok c -> pending := c :: !pending
      | Error e -> failure := Some e
  done;
  let dt = mono () -. t0 in
  match !failure with
  | None -> Alcotest.fail "connects kept 'succeeding' against a full backlog"
  | Some e ->
    Alcotest.(check bool) (Printf.sprintf "hard failure, not a timeout (%s)" e) true
      (not (contains "timed out" e));
    Alcotest.(check bool) (Printf.sprintf "returned promptly (%.2fs)" dt) true (dt < 2.5)

(* --- dda.service/2: binary frames -------------------------------------------- *)

let strip_header frame = String.sub frame 4 (String.length frame - 4)

let test_v2_frame_roundtrip () =
  (* requests, with and without a deadline *)
  let d =
    {
      Sproto.id = "r2-1";
      protocol = "threshold:a,2";
      graph = "cycle:aab";
      regime = Spec.Adversarial;
      max_configs = 5000;
      deadline_ms = Some 250;
      trace = Some "t2-9";
    }
  in
  (match Sproto.decode_request_payload (strip_header (Sproto.encode_request_frame (Sproto.Decide d))) with
  | Ok (Sproto.Decide d') ->
    Alcotest.(check string) "id" d.Sproto.id d'.Sproto.id;
    Alcotest.(check string) "protocol" d.Sproto.protocol d'.Sproto.protocol;
    Alcotest.(check string) "graph" d.Sproto.graph d'.Sproto.graph;
    Alcotest.(check bool) "regime" true (d'.Sproto.regime = Spec.Adversarial);
    Alcotest.(check int) "max_configs" 5000 d'.Sproto.max_configs;
    Alcotest.(check (option int)) "deadline" (Some 250) d'.Sproto.deadline_ms
  | Ok _ -> Alcotest.fail "decide frame decoded as something else"
  | Error e -> Alcotest.failf "decide frame round-trip: %s" e.Sproto.err_reason);
  (match
     Sproto.decode_request_payload
       (strip_header (Sproto.encode_request_frame (Sproto.Decide { d with deadline_ms = None })))
   with
  | Ok (Sproto.Decide d') -> Alcotest.(check (option int)) "no deadline" None d'.Sproto.deadline_ms
  | _ -> Alcotest.fail "deadline-free decide frame");
  (match Sproto.decode_request_payload (strip_header (Sproto.encode_request_frame (Sproto.Ping "p2"))) with
  | Ok (Sproto.Ping id) -> Alcotest.(check string) "ping id" "p2" id
  | _ -> Alcotest.fail "ping frame round-trip");
  (* a wire budget of 0 takes the server default *)
  (match
     Sproto.decode_request_payload ~default_max_configs:777
       (strip_header (Sproto.encode_request_frame (Sproto.Decide { d with max_configs = 0 })))
   with
  | Ok (Sproto.Decide d') -> Alcotest.(check int) "0 budget defaulted" 777 d'.Sproto.max_configs
  | _ -> Alcotest.fail "defaulting decide frame");
  (* responses: every status shape *)
  let resp status = { Sproto.rid = "x-2"; status; queue_ms = 1.5; total_ms = 3.25 } in
  List.iter
    (fun status ->
      match Sproto.decode_response_payload (strip_header (Sproto.encode_response_frame (resp status))) with
      | Ok r' ->
        Alcotest.(check string) "rid" "x-2" r'.Sproto.rid;
        Alcotest.(check string) "status kind" (Sproto.status_name status)
          (Sproto.status_name r'.Sproto.status)
      | Error e -> Alcotest.failf "%s response frame: %s" (Sproto.status_name status) e)
    [
      Sproto.Verdict { verdict = "accepts"; cached = true; configs = 42; seconds = 0.007 };
      Sproto.Bounded { reason = "deadline"; configs = 0 };
      Sproto.Rejected "queue_full";
      Sproto.Error "graph: bad spec";
      Sproto.Pong;
    ];
  (* verdict payload fields survive, including timing *)
  (match
     Sproto.decode_response_payload
       (strip_header
          (Sproto.encode_response_frame
             (resp (Sproto.Verdict { verdict = "rejects"; cached = true; configs = 9; seconds = 0.5 }))))
   with
  | Ok { Sproto.status = Sproto.Verdict v; queue_ms; total_ms; _ } ->
    Alcotest.(check string) "verdict" "rejects" v.verdict;
    Alcotest.(check bool) "cached" true v.cached;
    Alcotest.(check int) "configs" 9 v.configs;
    Alcotest.(check (float 1e-9)) "queue_ms" 1.5 queue_ms;
    Alcotest.(check (float 1e-9)) "total_ms" 3.25 total_ms
  | _ -> Alcotest.fail "verdict frame payload lost");
  (* junk payloads are structured errors, never exceptions *)
  List.iter
    (fun junk ->
      match Sproto.decode_request_payload junk with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "junk payload %S must not decode" junk)
    [ ""; "\x00"; "\xff\xff\xff\xff"; String.make 64 '\x07'; "\x01\xff\xff" ]

(* Raw /2 access: negotiate by hand, speak frames directly. *)
let raw_send_str fd s =
  let n = String.length s in
  let rec go off = if off < n then go (off + Unix.write_substring fd s off (n - off)) in
  go 0

let raw_connect_v2 sock =
  let fd, ic = raw_connect sock in
  raw_send_str fd Sproto.magic;
  let hello = really_input_string ic 4 in
  Alcotest.(check string) "server echoes the magic" Sproto.magic hello;
  (fd, ic)

let read_response_frame ic =
  let n = Sproto.frame_length (really_input_string ic 4) in
  Alcotest.(check bool) "response frame length sane" true (n >= 1 && n <= Sproto.max_frame);
  match Sproto.decode_response_payload (really_input_string ic n) with
  | Ok r -> r
  | Error e -> Alcotest.failf "undecodable response frame: %s" e

let test_v2_negotiation () =
  with_server Server.default_config (fun sock _srv ->
      (* byte-by-byte magic: the server must wait on a strict prefix
         rather than misread it as a JSON line *)
      let fd, ic = raw_connect sock in
      raw_send_str fd "DD";
      Thread.delay 0.05;
      raw_send_str fd "A2";
      Alcotest.(check string) "split magic still negotiates" Sproto.magic
        (really_input_string ic 4);
      raw_send_str fd (Sproto.encode_request_frame (Sproto.Ping "split"));
      (match read_response_frame ic with
      | { Sproto.status = Sproto.Pong; rid = "split"; _ } -> ()
      | _ -> Alcotest.fail "binary ping after split negotiation");
      (* a /1 connection coexists on the same server *)
      let fd1, ic1 = raw_connect sock in
      raw_send fd1 [ Sproto.request_to_json (Sproto.Ping "json") ];
      (match raw_read_responses ic1 1 with
      | [ { Sproto.status = Sproto.Pong; rid = "json"; _ } ] -> ()
      | _ -> Alcotest.fail "JSON ping beside a binary connection");
      (* a full decide over /2 *)
      raw_send_str fd (Sproto.encode_request_frame (decide_of ~id:"v2d" quick_job));
      (match read_response_frame ic with
      | { Sproto.status = Sproto.Verdict v; rid = "v2d"; _ } ->
        Alcotest.(check string) "verdict over /2" "accepts" v.verdict
      | r -> Alcotest.failf "unexpected /2 status %s" (Sproto.status_name r.Sproto.status));
      Unix.close fd1;
      Unix.close fd)

let test_v2_malformed_frames () =
  with_server Server.default_config (fun sock srv ->
      let fd, ic = raw_connect_v2 sock in
      (* well-delimited frames around junk payloads: each one is answered
         with an error frame and the connection survives *)
      Random.self_init ();
      let seed = Random.int 0x3FFFFFFF in
      Random.init seed;
      let frame_of payload =
        let b = Buffer.create (4 + String.length payload) in
        Buffer.add_uint8 b (String.length payload lsr 24 land 0xff);
        Buffer.add_uint8 b (String.length payload lsr 16 land 0xff);
        Buffer.add_uint8 b (String.length payload lsr 8 land 0xff);
        Buffer.add_uint8 b (String.length payload land 0xff);
        Buffer.add_string b payload;
        Buffer.contents b
      in
      let junk_payloads =
        List.init 20 (fun i ->
            (* opcode 0xfe is never valid, so random tails stay junk *)
            "\xfe" ^ String.init (1 + ((i * 7) mod 40)) (fun _ -> Char.chr (Random.int 256)))
      in
      List.iter (fun p -> raw_send_str fd (frame_of p)) junk_payloads;
      List.iter
        (fun _ ->
          match read_response_frame ic with
          | { Sproto.status = Sproto.Error _; _ } -> ()
          | r ->
            Alcotest.failf "junk frame (seed %d) must be a structured error, got %s" seed
              (Sproto.status_name r.Sproto.status))
        junk_payloads;
      raw_send_str fd (Sproto.encode_request_frame (Sproto.Ping "alive"));
      (match read_response_frame ic with
      | { Sproto.status = Sproto.Pong; rid = "alive"; _ } -> ()
      | _ -> Alcotest.fail "connection must survive junk frames");
      let s = Server.stats srv in
      Alcotest.(check int) "junk frames counted as errors" (List.length junk_payloads)
        s.Server.errors;
      (* an out-of-range length prefix is fatal: one final error frame,
         then the server closes the connection *)
      raw_send_str fd "\x7f\xff\xff\xff";
      (match read_response_frame ic with
      | { Sproto.status = Sproto.Error reason; _ } ->
        Alcotest.(check bool) "reason names the frame length" true (contains "frame" reason)
      | _ -> Alcotest.fail "oversize frame must be answered before closing");
      (match really_input_string ic 1 with
      | _ -> Alcotest.fail "server must close after a framing error"
      | exception End_of_file -> ());
      Unix.close fd)

let test_v2_pipelined_load () =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let store = Store.open_ ~root:(Filename.concat dir "cache") ~memo:1024 () in
  with_server
    { Server.default_config with cache = Some store; workers = 2; queue_capacity = 256;
      conn_limit = 16 }
    (fun sock _srv ->
      let addr = Sproto.Unix_socket sock in
      let spec = { Client.clients = 2; per_client = 40; mix = [ quick_job ]; deadline_ms = None } in
      (match Client.load ~version:2 ~pipeline:8 addr spec with
      | Error e -> Alcotest.failf "cold /2 load failed: %s" e
      | Ok cold ->
        Alcotest.(check int) "cold: all requests answered" 80 cold.Client.requests;
        Alcotest.(check int) "cold: all ok" 80 cold.Client.ok;
        Alcotest.(check int) "cold: no errors" 0 cold.Client.errors);
      match Client.load ~version:2 ~pipeline:8 addr spec with
      | Error e -> Alcotest.failf "warm /2 load failed: %s" e
      | Ok warm ->
        Alcotest.(check int) "warm: all requests answered" 80 warm.Client.requests;
        Alcotest.(check int) "warm: everything from the cache" 80 warm.Client.cached;
        Alcotest.(check bool) "warm: hit rate 100%" true (Client.hit_rate warm > 0.99))

let test_load_generator () =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let store = Store.open_ ~root:(Filename.concat dir "cache") () in
  with_server
    { Server.default_config with cache = Some store; workers = 2; queue_capacity = 256 }
    (fun sock _srv ->
      let addr = Sproto.Unix_socket sock in
      let spec = { Client.clients = 4; per_client = 6; mix = [ quick_job ]; deadline_ms = None } in
      (* cold pass populates the cache (concurrent cold requests for one
         key coalesce onto a single computation) ... *)
      (match Client.load addr spec with
      | Error e -> Alcotest.failf "cold load failed: %s" e
      | Ok cold ->
        Alcotest.(check int) "cold: all requests answered" 24 cold.Client.requests;
        Alcotest.(check int) "cold: all ok" 24 cold.Client.ok;
        Alcotest.(check int) "cold: no errors" 0 cold.Client.errors);
      (* ... so the warm assertion runs on a second pass *)
      match Client.load addr spec with
      | Error e -> Alcotest.failf "warm load failed: %s" e
      | Ok summary ->
        Alcotest.(check int) "warm: all requests answered" 24 summary.Client.requests;
        Alcotest.(check int) "warm: all ok" 24 summary.Client.ok;
        Alcotest.(check int) "warm: everything from the cache" 24 summary.Client.cached;
        Alcotest.(check bool) "hit rate reported" true (Client.hit_rate summary > 0.99);
        Alcotest.(check bool) "percentiles ordered" true
          (summary.Client.p50_ms <= summary.Client.p95_ms
          && summary.Client.p95_ms <= summary.Client.p99_ms);
        (* the summary document round-trips through the strict parser *)
        match Dda_telemetry.Json.parse (Client.summary_json summary) with
        | Error e -> Alcotest.failf "summary_json unparseable: %s" e
        | Ok doc -> (
          match Dda_telemetry.Json.member "schema" doc with
          | Some (Dda_telemetry.Json.Str "dda.client-load/1") -> ()
          | _ -> Alcotest.fail "summary schema marker missing"))

(* --- observability: stats, health, access log, renderers --------------------- *)

module T = Dda_telemetry.Telemetry
module Json = Dda_telemetry.Json
module SV = Dda_service.Stats_view

let fetch_stats ?version sock =
  match Client.connect ?version (Sproto.Unix_socket sock) with
  | Error e -> Alcotest.failf "stats connect: %s" e
  | Ok c ->
    let doc =
      match Client.stats c with Ok d -> d | Error e -> Alcotest.failf "stats rpc: %s" e
    in
    Client.close c;
    match Json.parse doc with
    | Ok j -> j
    | Error e -> Alcotest.failf "stats doc unparseable: %s" e

let stats_gauge doc name =
  match Option.bind (Json.member "gauges" doc) (Json.member name) with
  | Some (Json.Num f) -> f
  | _ -> Alcotest.failf "stats gauge %s missing" name

(* stats and health over both wire formats, against a live server that has
   served real work — the document must validate against the registry and
   the gauges must reflect the requests just made *)
let test_stats_health_roundtrip () =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let store = Store.open_ ~root:(Filename.concat dir "cache") ~memo:1024 () in
  with_server
    { Server.default_config with cache = Some store; workers = 1; conn_limit = 16 }
    (fun sock _srv ->
      let c = match Client.connect (Sproto.Unix_socket sock) with Ok c -> c | Error e -> Alcotest.fail e in
      (match Client.rpc c (decide_of ~id:"s1" quick_job) with
      | Ok { Sproto.status = Sproto.Verdict _; _ } -> ()
      | _ -> Alcotest.fail "warm-up decide failed");
      (match Client.rpc c (decide_of ~id:"s2" quick_job) with
      | Ok { Sproto.status = Sproto.Verdict v; _ } ->
        Alcotest.(check bool) "second decide cached" true v.cached
      | _ -> Alcotest.fail "second decide failed");
      (match Client.health c with
      | Ok s -> Alcotest.(check string) "healthy" "ok" s
      | Error e -> Alcotest.failf "health rpc: %s" e);
      Client.close c;
      List.iter
        (fun version ->
          let doc = fetch_stats ~version sock in
          Alcotest.(check (list string))
            (Printf.sprintf "stats over /%d validates" version)
            [] (T.validate_stats doc);
          Alcotest.(check bool) "decides counted" true (stats_gauge doc "service.verb.decide" >= 2.);
          Alcotest.(check bool) "uptime advances" true (stats_gauge doc "service.uptime_s" > 0.);
          Alcotest.(check bool) "mem-cache hits visible" true
            (stats_gauge doc "service.mem_cache.hits" >= 1.);
          (* the latency window saw the decides *)
          match Option.bind (Json.member "windows" doc) (Json.member "service.window.latency_ms") with
          | Some w -> (
            match Json.member "count" w with
            | Some (Json.Num n) -> Alcotest.(check bool) "window count" true (n >= 2.)
            | _ -> Alcotest.fail "window count missing")
          | None -> Alcotest.fail "latency window missing from stats")
        [ 1; 2 ])

(* during graceful drain the listeners stay open, so a fresh connection can
   still ask health and must see "draining" while in-flight work finishes *)
let test_health_draining () =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let sock = Filename.concat dir "s.sock" in
  let cfg =
    {
      Server.default_config with
      addresses = [ Sproto.Unix_socket sock ];
      workers = 1;
      conn_limit = 16;
    }
  in
  let srv = match Server.start cfg with Ok s -> s | Error e -> Alcotest.fail e in
  let fd, ic = raw_connect sock in
  (* three slow jobs on one worker: drain has real work to finish *)
  raw_send fd
    (List.init 3 (fun i -> Sproto.request_to_json (decide_of ~id:(Printf.sprintf "h%d" i) slow_job)));
  Thread.delay 0.1;
  Server.drain srv;
  (match Client.connect (Sproto.Unix_socket sock) with
  | Error e -> Alcotest.failf "connect during drain must succeed (health probes): %s" e
  | Ok c ->
    (match Client.health c with
    | Ok s -> Alcotest.(check string) "drain visible over health" "draining" s
    | Error e -> Alcotest.failf "health during drain: %s" e);
    Client.close c);
  (* the admitted slow jobs are still answered — drain drops nothing *)
  let responses = raw_read_responses ic 3 in
  Alcotest.(check int) "all admitted work answered" 3 (List.length responses);
  Unix.close fd;
  ignore (Server.wait srv)

let read_lines file =
  In_channel.with_open_bin file In_channel.input_all
  |> String.split_on_char '\n'
  |> List.filter (fun l -> l <> "")

(* every access-log line is strict JSON with the documented fields; the
   cache tier and the client trace id are reported *)
let test_access_log_schema () =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let store = Store.open_ ~root:(Filename.concat dir "cache") ~memo:1024 () in
  let log = Filename.concat dir "access.jsonl" in
  with_server
    { Server.default_config with cache = Some store; workers = 1; access_log = Some log }
    (fun sock _srv ->
      let c = match Client.connect (Sproto.Unix_socket sock) with Ok c -> c | Error e -> Alcotest.fail e in
      ignore (Client.rpc c (decide_of ~id:"a1" ~trace:"trace-xyz" quick_job));
      ignore (Client.rpc c (decide_of ~id:"a2" quick_job));
      ignore (Client.health c);
      Client.close c);
  (* the log is written asynchronously (staging arena + writer thread);
     once [with_server] returns the server has drained and joined the
     writer, so the file is complete *)
  let lines = read_lines log in
  Alcotest.(check int) "three loggable requests" 3 (List.length lines);
  let docs =
    List.map
      (fun l ->
        match Json.parse l with
        | Ok d -> d
        | Error e -> Alcotest.failf "access-log line not strict JSON: %s (%s)" l e)
      lines
  in
  List.iter
    (fun d ->
      List.iter
        (fun k -> if Json.member k d = None then Alcotest.failf "missing field %s" k)
        [ "ts"; "verb"; "id"; "status"; "queue_ms"; "compute_ms"; "total_ms" ])
    docs;
  let find id = List.find (fun d -> Json.member "id" d = Some (Json.Str id)) docs in
  Alcotest.(check bool) "trace echoed" true
    (Json.member "trace" (find "a1") = Some (Json.Str "trace-xyz"));
  Alcotest.(check bool) "cold decide computed (tier none)" true
    (Json.member "tier" (find "a1") = Some (Json.Str "none"));
  Alcotest.(check bool) "warm decide served from memory" true
    (Json.member "tier" (find "a2") = Some (Json.Str "mem"));
  Alcotest.(check bool) "admin verb logged" true
    (Json.member "verb" (find "health") = Some (Json.Str "health"))

let test_access_log_sampling_and_slow () =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let log2 = Filename.concat dir "sampled.jsonl" in
  with_server
    { Server.default_config with workers = 1; access_log = Some log2; log_sample = 2 }
    (fun sock _srv ->
      let c = match Client.connect (Sproto.Unix_socket sock) with Ok c -> c | Error e -> Alcotest.fail e in
      for i = 1 to 4 do
        ignore (Client.rpc c (decide_of ~id:(Printf.sprintf "n%d" i) quick_job))
      done;
      Client.close c);
  Alcotest.(check int) "every 2nd of 4 requests logged" 2 (List.length (read_lines log2));
  let log3 = Filename.concat dir "slow.jsonl" in
  with_server
    { Server.default_config with workers = 1; access_log = Some log3; slow_ms = Some 1e6 }
    (fun sock _srv ->
      let c = match Client.connect (Sproto.Unix_socket sock) with Ok c -> c | Error e -> Alcotest.fail e in
      for i = 1 to 4 do
        ignore (Client.rpc c (decide_of ~id:(Printf.sprintf "f%d" i) quick_job))
      done;
      Client.close c);
  Alcotest.(check int) "nothing beats a 1000 s slow bar" 0 (List.length (read_lines log3))

(* Prometheus exposition: every line is either a # TYPE comment or a
   name/value sample, names carry the dda_ prefix, values parse *)
let check_prom_line line =
  let starts_with p s = String.length s >= String.length p && String.sub s 0 (String.length p) = p in
  if starts_with "# TYPE " line then begin
    match String.split_on_char ' ' line with
    | [ "#"; "TYPE"; name; typ ] ->
      Alcotest.(check bool) (line ^ ": metric name prefixed") true (starts_with "dda_" name);
      Alcotest.(check bool) (line ^ ": known type") true
        (List.mem typ [ "counter"; "gauge"; "histogram"; "summary" ])
    | _ -> Alcotest.failf "malformed TYPE comment: %s" line
  end
  else
    match String.rindex_opt line ' ' with
    | None -> Alcotest.failf "sample line without value: %s" line
    | Some i ->
      let name = String.sub line 0 i in
      let value = String.sub line (i + 1) (String.length line - i - 1) in
      Alcotest.(check bool) (line ^ ": sample name prefixed") true (starts_with "dda_" name);
      (match float_of_string_opt value with
      | Some _ -> ()
      | None -> Alcotest.failf "unparsable sample value in: %s" line)

let test_prometheus_exposition () =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let store = Store.open_ ~root:(Filename.concat dir "cache") ~memo:1024 () in
  with_server
    { Server.default_config with cache = Some store; workers = 1 }
    (fun sock _srv ->
      let c = match Client.connect (Sproto.Unix_socket sock) with Ok c -> c | Error e -> Alcotest.fail e in
      ignore (Client.rpc c (decide_of ~id:"p1" quick_job));
      ignore (Client.rpc c (decide_of ~id:"p2" quick_job));
      Client.close c;
      let doc = fetch_stats sock in
      match SV.prometheus doc with
      | Error e -> Alcotest.failf "prometheus render: %s" e
      | Ok text ->
        let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' text) in
        Alcotest.(check bool) "non-trivial exposition" true (List.length lines > 10);
        List.iter check_prom_line lines;
        let has needle = List.exists (contains needle) lines in
        Alcotest.(check bool) "uptime gauge" true (has "dda_service_uptime_s ");
        Alcotest.(check bool) "health one-hot" true (has "dda_health{state=\"ok\"} 1");
        Alcotest.(check bool) "window summary quantile" true
          (has "dda_service_window_latency_ms{quantile=\"0.99\"}"));
  (* a non-stats document is refused, not mis-rendered *)
  match SV.prometheus (Json.Obj [ ("schema", Json.Str "dda.telemetry/1") ]) with
  | Ok _ -> Alcotest.fail "prometheus must reject non-stats documents"
  | Error _ -> ()

(* regression: label values (health states, backend addresses) and the
   structural verb names in the top frame must not be interpolated raw —
   a hostile string with '"', '\' or newline would splice extra sample
   lines into a scrape, and control bytes would corrupt the terminal *)
let test_prometheus_hostile_labels () =
  let hostile = "bad\"state\\with\nnewline" in
  let doc =
    Json.Obj
      [
        ("schema", Json.Str "dda.stats/1");
        ("health", Json.Str hostile);
        ( "gauges",
          Json.Obj [ ("service.verb.evil\x1b[2Jverb", Json.Num 3.); ("service.uptime_s", Json.Num 1.) ] );
        ( "backends",
          Json.Arr
            [
              Json.Obj
                [
                  ("addr", Json.Str "sock\"et\npath");
                  ("state", Json.Str "up");
                  ("inflight", Json.Num 2.);
                  ("forwarded", Json.Num 10.);
                  ("ejections", Json.Num 1.);
                ];
            ] );
      ]
  in
  (match SV.prometheus doc with
  | Error e -> Alcotest.failf "prometheus render: %s" e
  | Ok text ->
    (* every emitted line still parses as a comment or a sample *)
    List.iter check_prom_line
      (List.filter (fun l -> l <> "") (String.split_on_char '\n' text));
    Alcotest.(check bool) "hostile health escaped" true
      (contains "dda_health{state=\"bad\\\"state\\\\with\\nnewline\"} 1" text);
    Alcotest.(check bool) "no raw quote inside a label value" false
      (contains "state=\"bad\"state" text);
    Alcotest.(check bool) "backend address escaped" true
      (contains "dda_router_backend_up{backend=\"sock\\\"et\\npath\"} 1" text);
    Alcotest.(check bool) "backend counters labelled" true
      (contains "dda_router_backend_forwarded_total{backend=" text));
  let frame = SV.render_top doc in
  Alcotest.(check bool) "top frame strips control bytes" false
    (String.exists (fun c -> (c < ' ' && c <> '\n') || c = '\x7f') frame);
  Alcotest.(check bool) "hostile verb still listed, defanged" true
    (contains "evil.[2Jverb 3" frame)

let test_render_top_frame () =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  with_server
    { Server.default_config with workers = 1 }
    (fun sock _srv ->
      let c = match Client.connect (Sproto.Unix_socket sock) with Ok c -> c | Error e -> Alcotest.fail e in
      ignore (Client.rpc c (decide_of ~id:"t1" quick_job));
      Client.close c;
      let doc = fetch_stats sock in
      let frame = SV.render_top ~spark:[ 0; 1; 3; 2 ] doc in
      List.iter
        (fun needle ->
          Alcotest.(check bool) (Printf.sprintf "frame mentions %S" needle) true
            (contains needle frame))
        [ "health ok"; "p50"; "p95"; "p99"; "rps"; "mem-cache"; "verbs:"; "queue depth" ];
      (* one line per section, newline-terminated: a stable one-shot frame
         for --once / non-tty capture *)
      Alcotest.(check bool) "frame ends with a newline" true
        (String.length frame > 0 && frame.[String.length frame - 1] = '\n'))

let () =
  Alcotest.run "service"
    [
      ( "protocol",
        [
          Alcotest.test_case "request round-trip" `Quick test_request_roundtrip;
          Alcotest.test_case "response round-trip" `Quick test_response_roundtrip;
          Alcotest.test_case "malformed requests rejected with structure" `Quick
            test_protocol_rejects;
          Alcotest.test_case "addresses" `Quick test_parse_address;
        ] );
      ( "queue",
        [
          Alcotest.test_case "admission control" `Quick test_queue_admission;
          Alcotest.test_case "cross-thread close" `Quick test_queue_cross_thread;
        ] );
      ( "server",
        [
          Alcotest.test_case "cold then warm, across restarts" `Quick test_serve_cold_then_warm;
          Alcotest.test_case "malformed input over the wire" `Quick test_malformed_over_wire;
          Alcotest.test_case "queue-full rejection under burst" `Quick test_queue_full_rejection;
          Alcotest.test_case "per-connection limit" `Quick test_conn_limit_rejection;
          Alcotest.test_case "deadline expiry bounds out" `Quick test_deadline_expires_queued;
          Alcotest.test_case "hangup mid-request retires cleanly" `Quick test_hangup_mid_request;
          Alcotest.test_case "identical misses coalesce" `Quick test_coalesced_misses;
          Alcotest.test_case "drain drops nothing" `Quick test_drain_no_drop;
          Alcotest.test_case "closed-loop load generator" `Quick test_load_generator;
          Alcotest.test_case "connect timeout against a silent peer" `Quick
            test_connect_timeout;
          Alcotest.test_case "full unix backlog fails hard, not late" `Quick
            test_unix_backlog_full;
          Alcotest.test_case "connection cap clamped to FD_SETSIZE" `Quick
            test_max_connections_clamp;
        ] );
      ( "v2",
        [
          Alcotest.test_case "frame round-trips" `Quick test_v2_frame_roundtrip;
          Alcotest.test_case "negotiation, both formats live" `Quick test_v2_negotiation;
          Alcotest.test_case "malformed frames over the wire" `Quick test_v2_malformed_frames;
          Alcotest.test_case "pipelined load, cold then warm" `Quick test_v2_pipelined_load;
        ] );
      ( "observability",
        [
          Alcotest.test_case "stats + health over /1 and /2" `Quick test_stats_health_roundtrip;
          Alcotest.test_case "health reports draining" `Quick test_health_draining;
          Alcotest.test_case "access log schema + tiers + trace" `Quick test_access_log_schema;
          Alcotest.test_case "access log sampling and slow filter" `Quick
            test_access_log_sampling_and_slow;
          Alcotest.test_case "prometheus exposition" `Quick test_prometheus_exposition;
          Alcotest.test_case "hostile label values are escaped" `Quick
            test_prometheus_hostile_labels;
          Alcotest.test_case "top renders one frame" `Quick test_render_top_frame;
        ] );
    ]
