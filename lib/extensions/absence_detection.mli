(** Machines with weak absence detection (Definition 4.8) and their
    simulation by DAf-automata on bounded-degree graphs (Lemma 4.9).

    An absence-detection transition lets an initiating agent observe the
    {e support} of (a subset of) the current configuration — the set of
    states occupied by at least one agent — and move accordingly.  The weak
    variant allows several initiators at once: each initiator [v] sees the
    support of a subset [S_v ∋ v], and the subsets jointly cover all
    agents.

    Scheduling is synchronous (the DA$ classes): a step is a synchronous
    neighbourhood transition followed by an absence detection fired by every
    agent that is then in an initiating state.  If no agent initiates, the
    computation hangs and the whole step is discarded (the configuration is
    unchanged), exactly as in Definition 4.8.

    {!compile} is the Lemma 4.9 construction: a three-phase protocol in
    which initiators take the [root] distance label, every other agent picks
    a child label of a neighbour such that no neighbour holds a child of its
    own label (possible for labels in [Z_{2k+1} ∪ {root}] when the degree is
    at most [k], Lemma B.14), and the observed supports propagate back up
    the induced forest in phase 2. *)

type ('l, 's) t = {
  base : ('l, 's) Dda_machine.Machine.t;
  initiating : 's -> bool;  (** The set [Q_A]. *)
  detect : 's -> 's list -> 's;
      (** [detect q support] is [A(q, support)]; [support] is sorted and
          duplicate-free. *)
}

val create :
  base:('l, 's) Dda_machine.Machine.t ->
  initiating:('s -> bool) ->
  detect:('s -> 's list -> 's) ->
  ('l, 's) t

(** {1 Direct (native) semantics} *)

val step :
  assign:(initiators:int list -> int -> int) ->
  ('l, 's) t ->
  'l Dda_graph.Graph.t ->
  's Dda_runtime.Config.t ->
  's Dda_runtime.Config.t
(** One synchronous macro-step.  [assign ~initiators u] places agent [u] in
    the subset of the returned initiator (each initiator's subset implicitly
    contains itself); it must return a member of [initiators]. *)

val simulate_random :
  seed:int ->
  max_steps:int ->
  ('l, 's) t ->
  'l Dda_graph.Graph.t ->
  's Dda_runtime.Config.t * int
(** Synchronous run with uniformly random cover assignments; stops early on
    configurations that no assignment can change. *)

val space :
  max_configs:int -> ('l, 's) t -> 'l Dda_graph.Graph.t -> Dda_verify.Space.t
(** Exact space over all cover assignments (exponential; tiny graphs only).
    Steps that change nothing are recorded as self-loops, so
    [Dda_verify.Decide.unconditional] applies. *)

(** {1 The Lemma 4.9 compilation} *)

type dist = Root | Lab of int
(** Distance labels [D = Z_{2k+1} ∪ {root}]. *)

type 's state =
  | D0 of 's  (** Phase 0: plain state. *)
  | D1 of 's * 's * dist
      (** Phase 1: (post-transition state, pre-transition state, label). *)
  | D2 of 's * 's * 's list
      (** Phase 2: (state, pre-transition state, set of states seen below). *)

val last : 's state -> 's
(** The plain state an interrupted agent should be yanked to: identity on
    [D0], and the {e committed} post-transition state on [D1]/[D2].  This is
    the mapping [last] used by the Section 6.1 broadcasts (they compose
    their response functions with it to interrupt half-finished
    detections).  Committing the neighbourhood update at join time is
    essential: every agent of a round computes its ⟨cancel⟩ update from the
    same pre-round snapshot, so yanking stragglers to the committed state
    reproduces the full synchronous step and preserves the global sum of
    contributions — yanking them to the pre-round state would mix pre- and
    post-round contributions and let the sum drift, which breaks ties. *)

val compile : k:int -> ('l, 's) t -> ('l, 's state) Dda_machine.Machine.t
(** The DAf-automaton of Lemma 4.9 for graphs of degree at most [k].
    @raise Invalid_argument if [k < 1]. *)

val pp_state :
  (Format.formatter -> 's -> unit) -> Format.formatter -> 's state -> unit
