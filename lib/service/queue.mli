(** A bounded multi-producer single-consumer queue with admission control.

    The server's central mailbox: connection threads [try_push] incoming
    requests and are told synchronously when the queue is full — that is
    the admission-control decision, turned into a [rejected:queue_full]
    response instead of unbounded buffering.  Worker completions
    [force_push] past the capacity (they retire work, so refusing them
    could only deadlock).  The consumer [pop]s; producers and the consumer
    may live on different threads or domains (mutex + condition, no
    spinning).

    Closing is two-stage, mirroring graceful drain: {!close_intake} makes
    [try_push] fail while [pop] keeps blocking for stragglers pushed with
    [force_push]; {!close} additionally makes [pop] return [None] once the
    queue is empty. *)

type 'a t

val create : capacity:int -> 'a t
(** [capacity >= 1] bounds [try_push] admissions (clamped up to 1). *)

val capacity : 'a t -> int

val length : 'a t -> int

val try_push : 'a t -> 'a -> [ `Ok of int | `Full | `Closed ]
(** Admit an element if there is room and intake is open.  [`Ok depth]
    reports the queue depth just after the push (for gauges). *)

val force_push : 'a t -> 'a -> unit
(** Enqueue unconditionally, even past capacity or after {!close_intake}
    (but not after {!close} — then it is dropped). *)

val pop : 'a t -> 'a option
(** Block until an element is available; [None] once the queue is
    {!close}d and drained. *)

val try_pop : 'a t -> 'a option
(** Non-blocking pop: [None] when the queue is currently empty (whether
    or not it is closed).  Used by the event loop, which must never park
    on a condition variable — it parks in [select] instead and is woken
    through the self-pipe. *)

val close_intake : 'a t -> unit
(** Stop admissions: subsequent [try_push] returns [`Closed]. *)

val close : 'a t -> unit
(** Full close: also wakes every blocked [pop], which drains the remaining
    elements and then returns [None].  Implies {!close_intake}. *)
