type 'a t = {
  q : 'a Stdlib.Queue.t;
  m : Mutex.t;
  c : Condition.t;
  cap : int;
  mutable intake_closed : bool;
  mutable closed : bool;
}

let create ~capacity =
  {
    q = Stdlib.Queue.create ();
    m = Mutex.create ();
    c = Condition.create ();
    cap = max 1 capacity;
    intake_closed = false;
    closed = false;
  }

let capacity t = t.cap

let length t =
  Mutex.lock t.m;
  let n = Stdlib.Queue.length t.q in
  Mutex.unlock t.m;
  n

let try_push t x =
  Mutex.lock t.m;
  let r =
    if t.intake_closed || t.closed then `Closed
    else if Stdlib.Queue.length t.q >= t.cap then `Full
    else begin
      Stdlib.Queue.push x t.q;
      Condition.signal t.c;
      `Ok (Stdlib.Queue.length t.q)
    end
  in
  Mutex.unlock t.m;
  r

let force_push t x =
  Mutex.lock t.m;
  if not t.closed then begin
    Stdlib.Queue.push x t.q;
    Condition.signal t.c
  end;
  Mutex.unlock t.m

let pop t =
  Mutex.lock t.m;
  let rec wait () =
    if not (Stdlib.Queue.is_empty t.q) then Some (Stdlib.Queue.pop t.q)
    else if t.closed then None
    else begin
      Condition.wait t.c t.m;
      wait ()
    end
  in
  let r = wait () in
  Mutex.unlock t.m;
  r

let try_pop t =
  Mutex.lock t.m;
  let r =
    if Stdlib.Queue.is_empty t.q then None else Some (Stdlib.Queue.pop t.q)
  in
  Mutex.unlock t.m;
  r

let close_intake t =
  Mutex.lock t.m;
  t.intake_closed <- true;
  Mutex.unlock t.m

let close t =
  Mutex.lock t.m;
  t.intake_closed <- true;
  t.closed <- true;
  Condition.broadcast t.c;
  Mutex.unlock t.m
