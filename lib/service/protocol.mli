(** The [dda.service/1] wire protocol.

    JSON lines over a stream socket: each request and each response is one
    strict JSON object on one line, terminated by ['\n'].  Requests carry a
    mandatory ["schema"] field naming the protocol version; anything the
    server cannot parse — malformed JSON, an unknown schema, a bad spec —
    is answered with a structured [status:"error"] response, never a
    dropped connection or a crash.

    Request:
    {v
    {"schema":"dda.service/1","id":"c0-7","op":"decide",
     "protocol":"exists:a","graph":"cycle:abb","regime":"F",
     "max_configs":200000,"deadline_ms":2000}
    {"schema":"dda.service/1","id":"p1","op":"ping"}
    v}

    Response ([id] echoes the request; ["" ] when the request's id was
    unparseable):
    {v
    {"schema":"dda.service/1","id":"c0-7","status":"ok","verdict":"accepts",
     "cached":true,"configs":120,"seconds":0.0041,
     "queue_ms":0.3,"total_ms":0.9}
    {"schema":"dda.service/1","id":"c0-8","status":"bounded",
     "reason":"deadline","configs":0,"queue_ms":1800.2,"total_ms":1800.4}
    {"schema":"dda.service/1","id":"c0-9","status":"rejected",
     "reason":"queue_full"}
    {"schema":"dda.service/1","id":"","status":"error","reason":"..."}
    {"schema":"dda.service/1","id":"p1","status":"pong"}
    v}

    [status] values: ["ok"] (a verdict), ["bounded"] (a resource bound —
    the configuration budget, [reason:"budget"], or the request deadline,
    [reason:"deadline"]), ["rejected"] (admission control refused the
    request before any work: [reason] is [queue_full], [connection_limit]
    or [draining]), ["error"] (malformed request or unparsable spec),
    ["pong"].

    {b Admin verbs.}  Two further ops observe the server without entering
    the work queue — both are answered inline on the event loop:
    {v
    {"schema":"dda.service/1","id":"s1","op":"stats"}
    {"schema":"dda.service/1","id":"s1","status":"stats","stats":{...}}
    {"schema":"dda.service/1","id":"h1","op":"health"}
    {"schema":"dda.service/1","id":"h1","status":"health","state":"ok"}
    v}
    The [stats] payload is a [dda.stats/1] document (doc/OBSERVABILITY.md);
    [state] is [ok], [draining] (SIGTERM received, in-flight work
    finishing) or [overloaded] (admission queue at capacity).  A [decide]
    request may also carry an optional ["trace"] string — an opaque
    client-side correlation id echoed into the server's access log, never
    interpreted. *)

module Spec := Dda_batch.Spec

val schema : string
(** ["dda.service/1"]. *)

type decide = {
  id : string;  (** echoed verbatim in the response *)
  protocol : string;  (** {!Dda_batch.Spec.parse_protocol} syntax *)
  graph : string;  (** {!Dda_batch.Spec.parse_graph} syntax *)
  regime : Spec.regime;
  max_configs : int;
  deadline_ms : int option;
      (** overall budget from admission to answer; [None] = server default *)
  trace : string option;
      (** opaque client correlation id, echoed into the access log *)
}

type request =
  | Decide of decide
  | Ping of string  (** id *)
  | Stats of string  (** id — live [dda.stats/1] snapshot *)
  | Health of string  (** id — cheap liveness probe *)

type status =
  | Verdict of { verdict : string; cached : bool; configs : int; seconds : float }
      (** [verdict] is ["accepts"], ["rejects"] or ["inconsistent"];
          [seconds] is the wall-clock of the original computation (the
          cached value on a hit). *)
  | Bounded of { reason : string; configs : int }
      (** [reason]: ["budget"] or ["deadline"]. *)
  | Rejected of string  (** ["queue_full"] | ["connection_limit"] | ["draining"] *)
  | Error of string
  | Pong
  | Stats_doc of string
      (** a complete compact-JSON [dda.stats/1] document *)
  | Health_state of string  (** ["ok"] | ["draining"] | ["overloaded"] *)

type response = {
  rid : string;
  status : status;
  queue_ms : float;  (** admission to dispatch (0 for rejections/errors) *)
  total_ms : float;  (** admission to response *)
}

type parse_error = {
  err_id : string;  (** the request id when the envelope parsed, else [""] *)
  err_reason : string;
}

val request_to_json : request -> string
(** One line, no trailing newline. *)

val parse_request :
  ?default_max_configs:int -> string -> (request, parse_error) result
(** Strict parse of one request line.  [default_max_configs] (default
    200_000) fills an absent ["max_configs"]; an absent ["regime"] defaults
    to pseudo-stochastic, matching manifests. *)

val response_to_json : response -> string
val parse_response : string -> (response, string) result

val status_name : status -> string
(** The wire [status] field:
    ok | bounded | rejected | error | pong | stats | health. *)

(** {1 dda.service/2 — length-prefixed binary frames}

    The pipelining wire format (see doc/SERVICE.md for the byte-level
    layout).  A client opts in by sending the 4-byte magic {!magic}
    immediately after connect; the server echoes the same 4 bytes and the
    connection switches to binary frames in both directions.  Any other
    first bytes leave the connection in [/1] JSON-lines mode, so old
    clients connect unchanged.

    Every frame is a big-endian [u32] payload length followed by the
    payload ([1 ..= ]{!max_frame}[ bytes]; anything outside that range is
    a framing error and the server closes the connection after a final
    error frame).  An undecodable payload inside a well-delimited frame
    is answered with a [status:"error"] frame, exactly like a malformed
    [/1] line — the connection survives. *)

val schema2 : string
(** ["dda.service/2"]. *)

val magic : string
(** ["DDA2"] — the 4-byte hello that negotiates [/2]. *)

val max_frame : int
(** Maximum payload length (1 MiB). *)

val frame_length : string -> int
(** Decode a 4-byte big-endian header (raises [Invalid_argument] on a
    short string; the result may exceed {!max_frame} — callers validate). *)

val encode_request_frame : request -> string
(** Header + payload, ready to write. *)

val encode_response_frame : response -> string

val decode_request_payload :
  ?default_max_configs:int -> string -> (request, parse_error) result
(** Decode one frame payload (header already stripped).  Never raises on
    junk bytes; [default_max_configs] also substitutes a wire value of 0. *)

val decode_response_payload : string -> (response, string) result

(** {2 Raw frame surgery}

    Request and response payloads open the same way — a tag byte (the
    request op or response status) followed by the id as a [u16]-length
    string — so a proxy can match responses and rewrite ids without
    decoding the op-specific body.  The router forwards [/2] traffic
    through these; everything else uses the full codecs above. *)

val op_decide : int
val op_ping : int
val op_stats : int
val op_health : int
(** Request-payload tag bytes. *)

val payload_tag : string -> int
(** First byte of a payload, or [-1] when empty. *)

val payload_id : string -> string option
(** The id string following the tag byte; [None] when truncated. *)

val payload_body : string -> string option
(** Everything after the id — the op/status-specific body, byte-exact. *)

val reframe : tag:int -> id:string -> body:string -> string
(** A complete frame (length header included) carrying [tag], [id] and
    [body]: the id-swap primitive ([payload_tag]/[payload_body] of the
    result round-trip). *)

(** {1 Addresses} *)

type address =
  | Unix_socket of string  (** filesystem path *)
  | Tcp of string * int  (** host, port *)

val parse_address : string -> (address, string) result
(** [PATH] (containing [/] or ending in [.sock]), [HOST:PORT], or an IPv6
    literal in brackets, e.g. ["[::1]:7777"]. *)

val address_to_string : address -> string
