module Machine = Dda_machine.Machine
module Neighbourhood = Dda_machine.Neighbourhood
module Absence_detection = Dda_extensions.Absence_detection
module Weak_broadcast = Dda_extensions.Weak_broadcast
module Listx = Dda_util.Listx

type lstate = L0 | LL | LDouble | LBox
type dstate = C of int * lstate | Bot | Box

type detect_state = dstate Absence_detection.state
type bc_state = detect_state Weak_broadcast.state
type state = (bc_state * int) Weak_broadcast.state

let pp_lstate fmt m =
  Format.pp_print_string fmt
    (match m with L0 -> "" | LL -> "L" | LDouble -> "L2" | LBox -> "L□")

let pp_dstate fmt = function
  | C (x, m) -> Format.fprintf fmt "%d%a" x pp_lstate m
  | Bot -> Format.pp_print_string fmt "⊥"
  | Box -> Format.pp_print_string fmt "□"

let check_coeffs coeffs degree_bound =
  if degree_bound < 1 then invalid_arg "Homogeneous: degree bound must be >= 1";
  if coeffs = [] then invalid_arg "Homogeneous: empty coefficient list";
  let labels = List.map fst coeffs in
  if List.length (Listx.dedup_sorted Stdlib.compare labels) <> List.length labels then
    invalid_arg "Homogeneous: repeated label"

let contribution_bound ~coeffs ~degree_bound =
  check_coeffs coeffs degree_bound;
  List.fold_left (fun acc (_, a) -> max acc (abs a)) (2 * degree_bound) coeffs

let coeff_of coeffs l =
  match List.assoc_opt l coeffs with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Homogeneous: label %S has no coefficient" l)

(* ⟨cancel⟩ on a contribution, given the contributions of the neighbours
   (weighted count list, exact because β = k >= degree). *)
let cancel_contribution ~k ~e x contribs =
  let in_range lo hi =
    List.fold_left (fun acc (y, c) -> if lo <= y && y <= hi then acc + c else acc) 0 contribs
  in
  let x' =
    if -k <= x && x <= k then x - in_range (-e) (-k - 1) + in_range (k + 1) e
    else if x > k then x - in_range (-e) k
    else x + in_range (-k) e
  in
  (* On graphs respecting the degree bound, x' ∈ [-E, E] (E >= 2k).  The
     transition function must still be total on arbitrary graphs, where the
     automaton is allowed to be wrong (Figure 1: bounded-degree knowledge is
     what buys the power), so out-of-contract inputs are clamped. *)
  max (-e) (min e x')

(* --- P_cancel alone (Lemma 6.1 experiments) ------------------------------ *)

let cancel_machine ~coeffs ~degree_bound =
  let k = degree_bound in
  let e = contribution_bound ~coeffs ~degree_bound in
  Machine.create ~name:"P_cancel" ~beta:k
    ~init:(coeff_of coeffs)
    ~delta:(fun x n -> cancel_contribution ~k ~e x n)
    ~accepting:(fun x -> x >= -k)
    ~rejecting:(fun x -> x < -k)
    ~pp_state:Format.pp_print_int ()

(* --- P_detect: cancellation × leaders + weak absence detection ----------- *)

let detect_machine ~coeffs ~degree_bound =
  let k = degree_bound in
  let e = contribution_bound ~coeffs ~degree_bound in
  let delta s n =
    match s with
    | C (x, m) ->
      let contribs =
        List.filter_map (function C (y, _), c -> Some (y, c) | _ -> None) n
      in
      C (cancel_contribution ~k ~e x contribs, m)
    | Bot | Box -> s
  in
  let base =
    Machine.create ~name:"P_detect" ~beta:k
      ~init:(fun l -> C (coeff_of coeffs l, LL))
      ~delta
      ~accepting:(fun s -> s <> Box)
      ~rejecting:(fun s -> s = Box)
      ~pp_state:pp_dstate ()
  in
  let initiating = function C (_, LL) -> true | _ -> false in
  let small = function C (y, (L0 | LL)) -> -k <= y && y <= k | _ -> false in
  let negative = function C (y, (L0 | LL)) -> -e <= y && y <= -1 | _ -> false in
  let detect q support =
    match q with
    | C (x, LL) ->
      if List.mem Box support then Bot
      else if List.mem Bot support then C (x, L0) (* resign: a reset is coming *)
      else if List.for_all small support then C (x, LDouble)
      else if List.for_all negative support then C (x, LBox)
      else q
    | other -> other
  in
  Absence_detection.create ~base ~initiating ~detect

(* --- P_bc: the ⟨double⟩ and ⟨reject⟩ broadcasts --------------------------- *)

let fid_double = 0
let fid_reject = 1

let bc_machine ~coeffs ~degree_bound =
  let k = degree_bound in
  let p'_detect = Absence_detection.compile ~k (detect_machine ~coeffs ~degree_bound) in
  let initiate = function
    | Absence_detection.D0 (C (x, LDouble)) ->
      Some (Absence_detection.D0 (C (2 * x, LL)), fid_double)
    | Absence_detection.D0 (C (_, LBox)) -> Some (Absence_detection.D0 Box, fid_reject)
    | _ -> None
  in
  (* Response functions are composed with `last`, interrupting any
     half-finished simulated detection (Section 6.1). *)
  (* Crucial (Lemma D.5): only LEADER components may be mapped to the error
     state ⊥ — resets turn ⊥-agents into leaders, so sending a follower to ⊥
     would let the leader count grow and the reset sequence cycle forever,
     which an adversarial scheduler can exploit into a fair non-converging
     run.  Follower states outside the listed ranges are left unchanged, as
     in the paper (unlisted mappings are the identity); they only arise in
     multi-leader epochs, which always end in a reset that rebuilds every
     contribution from the frozen input. *)
  let double_f = function
    | C (y, L0) when -k <= y && y <= k -> C (2 * y, L0)
    | C (_, (LL | LDouble | LBox)) -> Bot (* a conflicting leader: eliminate *)
    | (C (_, L0) | Box | Bot) as other -> other
  in
  let reject_f = function
    | C (y, L0) when y < 0 -> Box
    | C (_, (LL | LDouble | LBox)) -> Bot
    | (C (_, L0) | Box | Bot) as other -> other
  in
  let respond fid s =
    let plain = Absence_detection.last s in
    Absence_detection.D0 (if fid = fid_double then double_f plain else reject_f plain)
  in
  Weak_broadcast.create ~base:p'_detect ~initiate ~respond ~response_count:2

(* --- P_reset and the final automaton -------------------------------------- *)

let machine ~coeffs ~degree_bound =
  check_coeffs coeffs degree_bound;
  let p'_bc = Weak_broadcast.compile (bc_machine ~coeffs ~degree_bound) in
  let base =
    Machine.product_frozen ~name:"P_reset" ~snd_init:(coeff_of coeffs)
      ~pp_snd:Format.pp_print_int p'_bc
  in
  let initiate = function
    | Weak_broadcast.Base (Absence_detection.D0 Bot), q0 ->
      Some ((Weak_broadcast.Base (Absence_detection.D0 (C (q0, LL))), q0), 0)
    | _ -> None
  in
  let respond _fid (_, r0) = (Weak_broadcast.Base (Absence_detection.D0 (C (r0, L0))), r0) in
  let reset = Weak_broadcast.create ~base ~initiate ~respond ~response_count:1 in
  let name =
    Printf.sprintf "DAf[%s>=0,k=%d]"
      (String.concat "+" (List.map (fun (l, a) -> Printf.sprintf "%d·%s" a l) coeffs))
      degree_bound
  in
  Machine.rename name (Weak_broadcast.compile reset)

let carried_dstate (s : state) =
  let bc =
    match s with
    | Weak_broadcast.Base (b, _) | Weak_broadcast.Mid ((b, _), _, _) -> b
  in
  let detect =
    match bc with Weak_broadcast.Base d | Weak_broadcast.Mid (d, _, _) -> d
  in
  match detect with
  | Absence_detection.D0 q | Absence_detection.D1 (q, _, _) | Absence_detection.D2 (q, _, _) -> q

let weak_majority ~degree_bound = machine ~coeffs:[ ("a", 1); ("b", -1) ] ~degree_bound

let majority ~degree_bound =
  (* #a > #b  ⟺  ¬(#b >= #a): complement by swapping Y and N. *)
  let m = machine ~coeffs:[ ("a", -1); ("b", 1) ] ~degree_bound in
  Machine.rename "DAf[majority a>b]"
    (Machine.with_acceptance ~accepting:m.Machine.rejecting ~rejecting:m.Machine.accepting m)
