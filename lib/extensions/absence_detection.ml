module Graph = Dda_graph.Graph
module Machine = Dda_machine.Machine
module Neighbourhood = Dda_machine.Neighbourhood
module Config = Dda_runtime.Config
module Listx = Dda_util.Listx
module Prng = Dda_util.Prng

type ('l, 's) t = {
  base : ('l, 's) Machine.t;
  initiating : 's -> bool;
  detect : 's -> 's list -> 's;
}

let create ~base ~initiating ~detect = { base; initiating; detect }

(* --- Native synchronous semantics ---------------------------------------- *)

let support_of states = Listx.dedup_sorted Stdlib.compare states

let step ~assign ad g c =
  let n = Config.size c in
  let nodes = Listx.range n in
  (* 1. synchronous neighbourhood transition *)
  let c' = Config.step ad.base g c nodes in
  (* 2. absence detection by every agent now in an initiating state *)
  let initiators = List.filter (fun v -> ad.initiating (Config.state c' v)) nodes in
  if initiators = [] then c (* the computation hangs; the step is discarded *)
  else begin
    let subset_states = Array.make n [] in
    List.iter
      (fun u ->
        let v = assign ~initiators u in
        if not (List.mem v initiators) then
          invalid_arg "Absence_detection.step: assignment chose a non-initiator";
        subset_states.(v) <- Config.state c' u :: subset_states.(v))
      nodes;
    let next = Config.to_array c' in
    List.iter
      (fun v ->
        (* S_v contains v itself plus everything assigned to it *)
        let support = support_of (Config.state c' v :: subset_states.(v)) in
        next.(v) <- ad.detect (Config.state c' v) support)
      initiators;
    Config.of_states next
  end

let simulate_random ~seed ~max_steps ad g =
  let rng = Prng.create seed in
  let c = ref (Config.initial ad.base g) in
  let steps = ref 0 in
  let unchanged = ref 0 in
  (* Stop after a run of unchanged macro-steps: either the computation hangs
     (no initiators) or sampled covers keep fixing the configuration. *)
  let patience = 20 in
  while !unchanged < patience && !steps < max_steps do
    let assign ~initiators _ = Prng.pick rng initiators in
    let c' = step ~assign ad g !c in
    incr steps;
    if Config.equal c' !c then incr unchanged
    else begin
      unchanged := 0;
      c := c'
    end
  done;
  (!c, !steps)

(* --- Exact space over all cover assignments ------------------------------ *)

let space ~max_configs ad g =
  let n = Graph.nodes g in
  let nodes = Listx.range n in
  let expand arr =
    let c = Config.of_states arr in
    let c' = Config.step ad.base g c nodes in
    let initiators = List.filter (fun v -> ad.initiating (Config.state c' v)) nodes in
    let results =
      if initiators = [] then [ arr ]
      else begin
        let assignments = Listx.cartesian_n (List.map (fun _ -> initiators) nodes) in
        List.map
          (fun assignment ->
            let table = List.combine nodes assignment in
            let assign ~initiators:_ u = List.assoc u table in
            Config.to_array (step ~assign ad g c))
          assignments
      end
    in
    let distinct = Listx.dedup_sorted Stdlib.compare results in
    List.map (fun r -> (0, r)) distinct
  in
  Dda_verify.Space.explore_custom ~max_configs ~kind:Dda_verify.Space.Counted ~node_count:n
    ~initial:(Config.to_array (Config.initial ad.base g))
    ~expand
    ~accepting:(Array.for_all ad.base.Machine.accepting)
    ~rejecting:(Array.for_all ad.base.Machine.rejecting)
    ~describe:(fun arr ->
      Format.asprintf "%a" (Config.pp ad.base.Machine.pp_state) (Config.of_states arr))

(* --- Lemma 4.9: distance-labelled three-phase compilation ---------------- *)

type dist = Root | Lab of int

type 's state = D0 of 's | D1 of 's * 's * dist | D2 of 's * 's * 's list

let last = function D0 q -> q | D1 (q, _, _) -> q | D2 (q, _, _) -> q

let pp_dist fmt = function
  | Root -> Format.pp_print_string fmt "root"
  | Lab i -> Format.pp_print_int fmt i

let pp_state pp_base fmt = function
  | D0 q -> pp_base fmt q
  | D1 (q, r, d) -> Format.fprintf fmt "⟨%a←%a|%a⟩" pp_base q pp_base r pp_dist d
  | D2 (q, _, s) ->
    Format.fprintf fmt "⟨%a|{%a}⟩" pp_base q (Listx.pp_list ~sep:"," pp_base) s

let compile ~k ad =
  if k < 1 then invalid_arg "Absence_detection.compile: degree bound must be >= 1";
  let b = ad.base in
  let modulus = (2 * k) + 1 in
  let incr_dist = function Root -> Lab 1 | Lab i -> Lab ((i + 1) mod modulus) in
  (* child S: a label d that is the child of a present label while no present
     label is a child of d (Lemma B.14 guarantees existence for 0<|S|<=k). *)
  let child labels =
    let mem d = List.mem d labels in
    let candidates = List.map incr_dist labels in
    match List.find_opt (fun d -> not (mem (incr_dist d))) candidates with
    | Some d -> d
    | None -> invalid_arg "Absence_detection.compile: no valid child label (degree > k?)"
  in
  let delta s n =
    let d1_labels = List.filter_map (function D1 (_, _, d), _ -> Some d | _ -> None) n in
    let has_d0 = Neighbourhood.exists_where (function D0 _ -> true | _ -> false) n in
    let has_d1 = d1_labels <> [] in
    let has_d2 = Neighbourhood.exists_where (function D2 _ -> true | _ -> false) n in
    match s with
    | D0 q ->
      if has_d2 then s (* neighbour one phase behind: wait *)
      else begin
        (* old(N): the phase-0 state of every neighbour (phase-1 neighbours
           expose their remembered pre-transition state). *)
        let old_nbh =
          Machine.project_neighbourhood ~beta:b.Machine.beta
            (function D0 r -> r | D1 (_, r, _) -> r | D2 (r, _, _) -> r)
            n
        in
        let q' = b.Machine.delta q old_nbh in
        if ad.initiating q' then D1 (q', q, Root) (* rule (1) *)
        else if has_d1 then D1 (q', q, child d1_labels) (* rule (2) *)
        else s (* nobody initiated: hang in phase 0 *)
      end
    | D1 (q, r, d) ->
      if has_d0 then s
      else if List.mem (incr_dist d) d1_labels then s (* children not done *)
      else begin
        let seen =
          List.concat_map (function D2 (_, _, set), _ -> set | _ -> []) n
        in
        D2 (q, r, Listx.dedup_sorted Stdlib.compare (q :: seen)) (* rule (3) *)
      end
    | D2 (q, _, set) ->
      if has_d1 then s
      else if ad.initiating q then D0 (ad.detect q set) (* rule (4) *)
      else D0 q (* rule (5) *)
  in
  let carried = function D0 q -> q | D1 (q, _, _) -> q | D2 (q, _, _) -> q in
  Machine.create
    ~name:(b.Machine.name ^ "+ad")
    ~beta:(max b.Machine.beta 1)
    ~init:(fun l -> D0 (b.Machine.init l))
    ~delta
    ~accepting:(fun s -> b.Machine.accepting (carried s))
    ~rejecting:(fun s -> b.Machine.rejecting (carried s))
    ~pp_state:(pp_state b.Machine.pp_state) ()
