(* External-memory engine: varint codec round-trips, arena spill/fault
   identity, spilled-vs-resident differentials over the protocol corpus in
   all three fairness regimes (symmetry quotients included), and
   streaming-SCC-vs-Tarjan equivalence on resident spaces. *)

(* Pin the parallel gates like test_engine, keep spill files out of the
   build sandbox, and leave the streaming override off unless a test turns
   it on. *)
let () =
  Unix.putenv "DDA_PAR_CORES" "4";
  Unix.putenv "DDA_PAR_THRESHOLD" "1";
  Unix.putenv "DDA_STREAM_SCC" "0";
  Unix.putenv "DDA_SPILL_DIR"
    (Filename.concat (Filename.get_temp_dir_name ()) "dda_spill_test")

module G = Dda_graph.Graph
module N = Dda_machine.Neighbourhood
module Machine = Dda_machine.Machine
module Space = Dda_verify.Space
module Decide = Dda_verify.Decide
module Engine = Dda_verify.Engine
module Arena = Dda_verify.Arena
module Sym = Dda_verify.Symmetry
module H = Dda_protocols.Homogeneous
module Prng = Dda_util.Prng
module Listx = Dda_util.Listx

(* Any positive budget below the unevictable floor forces every sealed
   segment straight to disk — the harshest spill schedule. *)
let tiny_budget = 1

(* ------------------------------------------------------------------ *)
(* Varint codec                                                         *)
(* ------------------------------------------------------------------ *)

let roundtrip xs =
  let b = Bytes.create ((List.length xs + 1) * Arena.varint_max) in
  let stop = List.fold_left (fun p v -> Arena.put_varint b p v) 0 xs in
  let rec read p acc =
    if p >= stop then List.rev acc
    else begin
      let v, p' = Arena.get_varint b p in
      read p' (v :: acc)
    end
  in
  read 0 []

let prop_varint_roundtrip =
  let gen =
    QCheck.(
      list_of_size
        Gen.(int_range 0 40)
        (oneof [ int_range 0 300; int_range 0 1_000_000; map (fun v -> v land max_int) int ]))
  in
  QCheck.Test.make ~name:"varint round-trip" ~count:500 gen (fun xs -> roundtrip xs = xs)

let test_varint_edges () =
  let edges = [ 0; 1; 127; 128; 255; 16383; 16384; (1 lsl 32) - 1; max_int ] in
  Alcotest.(check (list int)) "edge values" edges (roundtrip edges);
  let b = Bytes.create Arena.varint_max in
  Alcotest.check_raises "negative refused" (Invalid_argument "Arena.put_varint: negative")
    (fun () -> ignore (Arena.put_varint b 0 (-1)))

(* ------------------------------------------------------------------ *)
(* Arena: append / view identity across spills and faults               *)
(* ------------------------------------------------------------------ *)

let test_arena_spill_identity () =
  let budget = Arena.budget_create ~limit:tiny_budget in
  let a = Arena.create budget ~name:"records" ~seg_bytes:256 in
  let rng = Prng.create 42 in
  let recs =
    Array.init 500 (fun i ->
        let len = 1 + Prng.int rng 40 in
        Bytes.init len (fun k -> Char.chr ((i + (3 * k)) land 0xff)))
  in
  let pos = Array.map (fun r -> Arena.append a r 0 (Bytes.length r)) recs in
  let check i p =
    let seg, off = Arena.view a p in
    Alcotest.(check bool)
      (Printf.sprintf "record %d" i)
      true
      (Bytes.sub seg off (Bytes.length recs.(i)) = recs.(i))
  in
  (* forward then backward: the backward pass faults early segments back in
     after the tail pushed them out *)
  Array.iteri check pos;
  for i = Array.length pos - 1 downto 0 do
    check i pos.(i)
  done;
  let s = Arena.budget_stats budget in
  Alcotest.(check bool) "segments spilled" true (s.Arena.segments_out > 0);
  Alcotest.(check bool) "segments faulted" true (s.Arena.segments_in > 0);
  Alcotest.(check bool) "bytes written" true (s.Arena.bytes_out > 0);
  Alcotest.(check bool) "peak above budget floor" true (s.Arena.resident_peak >= 256);
  Arena.release a

let test_arena_u32 () =
  let budget = Arena.budget_create ~limit:tiny_budget in
  let a = Arena.create budget ~name:"u32" ~seg_bytes:64 in
  let scratch = Bytes.create 4 in
  let vals = Array.init 300 (fun i -> (i * 0x01000193) land 0xFFFFFFFF) in
  let pos =
    Array.map
      (fun v ->
        Bytes.set_int32_le scratch 0 (Int32.of_int v);
        Arena.append a scratch 0 4)
      vals
  in
  Array.iteri
    (fun i p -> Alcotest.(check int) (Printf.sprintf "u32 %d" i) vals.(i) (Arena.read_u32 a p))
    pos;
  Arena.release a

(* ------------------------------------------------------------------ *)
(* Spilled-vs-resident differential                                     *)
(* ------------------------------------------------------------------ *)

(* Same random 4-state machines as test_engine: enough dynamics to hit all
   three verdict constructors across seeds. *)
let random_machine seed =
  let rng = Prng.create (0x9e3779b9 + seed) in
  let beta = 1 + Prng.int rng 2 in
  let card = beta + 1 in
  let table = Array.init (4 * card * card * card * card) (fun _ -> Prng.int rng 4) in
  let role = Array.init 4 (fun _ -> Prng.int rng 3) in
  Machine.create
    ~name:(Printf.sprintf "rand-%d" seed)
    ~beta
    ~init:(fun l -> if l = 'a' then 0 else 1)
    ~delta:(fun q n ->
      let c s = min beta (N.count n s) in
      let idx = ref q in
      for s = 0 to 3 do
        idx := (!idx * card) + c s
      done;
      table.(!idx))
    ~accepting:(fun q -> role.(q) = 0)
    ~rejecting:(fun q -> role.(q) = 1)
    ~pp_state:Format.pp_print_int ()

let shape_graph = function
  | 0 -> G.clique [ 'a'; 'a'; 'b'; 'b' ]
  | 1 -> G.line [ 'a'; 'b'; 'a'; 'b'; 'b' ]
  | 2 -> G.cycle [ 'a'; 'b'; 'b'; 'a'; 'b' ]
  | 3 -> G.star ~centre:'a' ~leaves:[ 'b'; 'b'; 'a' ]
  | _ -> G.line [ 'b'; 'a' ]

let same_space a b =
  a.Space.size = b.Space.size
  && a.Space.initial = b.Space.initial
  && List.for_all
       (fun i ->
         a.Space.succs i = b.Space.succs i
         && a.Space.accepting i = b.Space.accepting i
         && a.Space.rejecting i = b.Space.rejecting i)
       (Listx.range a.Space.size)

let same_sigmas a b =
  match (Space.engine a, Space.engine b) with
  | Some ea, Some eb ->
    let n = Engine.out_degree ea in
    let ok = ref (ea.Engine.initial_sigma = eb.Engine.initial_sigma) in
    for i = 0 to ea.Engine.size - 1 do
      for k = 0 to n - 1 do
        if Engine.edge_sigma ea i k <> Engine.edge_sigma eb i k then ok := false
      done
    done;
    !ok
  | _ -> false

let verdict_shape = function
  | Decide.Accepts -> 0
  | Decide.Rejects -> 1
  | Decide.Inconsistent _ -> 2

(* Witness strings legitimately differ between the streaming and Tarjan
   analyses, so differentials compare constructors. *)
let verdict3 space =
  ( verdict_shape (Decide.pseudo_stochastic space),
    verdict_shape (Decide.adversarial space),
    verdict_shape (Decide.unconditional space) )

let prop_spilled_matches_resident =
  QCheck.Test.make ~name:"spilled space = resident space (all regimes)" ~count:60
    QCheck.(pair small_int (int_range 0 4))
    (fun (seed, shape) ->
      let m = random_machine seed in
      let g = shape_graph shape in
      let resident = Space.explore ~max_configs:100_000 m g in
      let spilled = Space.explore ~mem_budget:tiny_budget ~max_configs:100_000 m g in
      Engine.spilled (Option.get (Space.engine spilled))
      && (not (Engine.spilled (Option.get (Space.engine resident))))
      && same_space resident spilled
      && verdict3 resident = verdict3 spilled)

let prop_spilled_symmetry =
  QCheck.Test.make ~name:"spilled quotient = resident quotient" ~count:40
    QCheck.(pair small_int (int_range 0 3))
    (fun (seed, shape) ->
      let m = random_machine seed in
      let g, sym =
        match shape with
        | 0 -> (G.cycle [ 'a'; 'b'; 'a'; 'b' ], Sym.cycle 4)
        | 1 -> (G.line [ 'a'; 'b'; 'b'; 'a' ], Sym.line 4)
        | 2 -> (G.star ~centre:'b' ~leaves:[ 'a'; 'a'; 'b' ], Sym.star ~centre:0 4)
        | _ -> (G.clique [ 'a'; 'a'; 'b' ], Sym.clique 3)
      in
      let resident = Space.explore ~symmetry:sym ~max_configs:100_000 m g in
      let spilled = Space.explore ~symmetry:sym ~mem_budget:tiny_budget ~max_configs:100_000 m g in
      same_space resident spilled
      && same_sigmas resident spilled
      && verdict3 resident = verdict3 spilled)

(* Deterministic corpus: §6.1 weak-majority lines (big enough to seal and
   spill real segments), the exists-a ring with its dihedral quotient, and
   the inconsistent oscillator. *)
let test_corpus_differential () =
  let check name resident spilled =
    Alcotest.(check bool) (name ^ " space") true (same_space resident spilled);
    Alcotest.(check bool) (name ^ " verdicts") true (verdict3 resident = verdict3 spilled)
  in
  let m = H.weak_majority ~degree_bound:2 in
  List.iter
    (fun word ->
      let labels = List.init (String.length word) (fun i -> String.make 1 word.[i]) in
      let g = G.line labels in
      let r = Space.explore ~max_configs:200_000 m g in
      let s = Space.explore ~mem_budget:tiny_budget ~max_configs:200_000 m g in
      check word r s;
      if word = "abab" then begin
        let st = Option.get (Engine.spill_stats (Option.get (Space.engine s))) in
        Alcotest.(check bool) "abab spilled segments" true (st.Arena.segments_out > 0)
      end)
    [ "abb"; "abab" ];
  let me = Dda_protocols.Cutoff_one.exists_label ~alphabet:[ "a"; "b" ] "a" in
  let labels = List.init 9 (fun i -> if i mod 3 = 0 then "a" else "b") in
  let g = G.cycle labels in
  let r = Space.explore ~symmetry:(Sym.cycle 9) ~max_configs:10_000 me g in
  let s = Space.explore ~symmetry:(Sym.cycle 9) ~mem_budget:tiny_budget ~max_configs:10_000 me g in
  check "exists-a ring / dihedral-18" r s;
  Alcotest.(check bool) "ring quotient sigmas" true (same_sigmas r s);
  let g = G.line [ 'a'; 'b'; 'a' ] in
  let r = Space.explore ~max_configs:10_000 Helpers.flipper g in
  let s = Space.explore ~mem_budget:tiny_budget ~max_configs:10_000 Helpers.flipper g in
  check "flipper" r s

(* ------------------------------------------------------------------ *)
(* Streaming SCC on resident spaces (DDA_STREAM_SCC=1)                  *)
(* ------------------------------------------------------------------ *)

let with_streaming f =
  Unix.putenv "DDA_STREAM_SCC" "1";
  Fun.protect ~finally:(fun () -> Unix.putenv "DDA_STREAM_SCC" "0") f

let prop_streaming_matches_tarjan =
  QCheck.Test.make ~name:"streaming analyses = Tarjan analyses" ~count:60
    QCheck.(pair small_int (int_range 0 4))
    (fun (seed, shape) ->
      let m = random_machine seed in
      let g = shape_graph shape in
      let space = Space.explore ~max_configs:100_000 m g in
      let tarjan = verdict3 space in
      let streaming = with_streaming (fun () -> verdict3 space) in
      tarjan = streaming)

let prop_streaming_matches_tarjan_reduced =
  QCheck.Test.make ~name:"streaming analyses = Tarjan analyses (quotient)" ~count:40
    QCheck.(pair small_int (int_range 0 3))
    (fun (seed, shape) ->
      let m = random_machine seed in
      let g, sym =
        match shape with
        | 0 -> (G.cycle [ 'a'; 'b'; 'a'; 'b' ], Sym.cycle 4)
        | 1 -> (G.line [ 'a'; 'b'; 'b'; 'a' ], Sym.line 4)
        | 2 -> (G.star ~centre:'b' ~leaves:[ 'a'; 'a'; 'b' ], Sym.star ~centre:0 4)
        | _ -> (G.clique [ 'a'; 'a'; 'b' ], Sym.clique 3)
      in
      let space = Space.explore ~symmetry:sym ~max_configs:100_000 m g in
      let tarjan = verdict3 space in
      let streaming = with_streaming (fun () -> verdict3 space) in
      tarjan = streaming)

let () =
  Alcotest.run "spill"
    [
      ( "codec",
        [
          QCheck_alcotest.to_alcotest prop_varint_roundtrip;
          Alcotest.test_case "varint edge values" `Quick test_varint_edges;
        ] );
      ( "arena",
        [
          Alcotest.test_case "spill/fault identity" `Quick test_arena_spill_identity;
          Alcotest.test_case "u32 records" `Quick test_arena_u32;
        ] );
      ( "differential",
        [
          QCheck_alcotest.to_alcotest prop_spilled_matches_resident;
          QCheck_alcotest.to_alcotest prop_spilled_symmetry;
          Alcotest.test_case "protocol corpus" `Quick test_corpus_differential;
        ] );
      ( "streaming",
        [
          QCheck_alcotest.to_alcotest prop_streaming_matches_tarjan;
          QCheck_alcotest.to_alcotest prop_streaming_matches_tarjan_reduced;
        ] );
    ]
