module G = Dda_graph.Graph
module M = Dda_multiset.Multiset
module Prng = Dda_util.Prng
module Listx = Dda_util.Listx

let check_valid what g =
  match G.validate g with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s should be valid: %s" what e

let test_clique () =
  let g = G.clique [ 'a'; 'b'; 'c'; 'd' ] in
  check_valid "K4" g;
  Alcotest.(check int) "nodes" 4 (G.nodes g);
  Alcotest.(check int) "edges" 6 (List.length (G.edges g));
  Alcotest.(check int) "max degree" 3 (G.max_degree g);
  Alcotest.(check bool) "adjacent" true (G.adjacent g 0 3)

let test_star () =
  let g = G.star ~centre:'c' ~leaves:[ 'a'; 'a'; 'b' ] in
  check_valid "star" g;
  Alcotest.(check int) "degree of centre" 3 (G.degree g 0);
  Alcotest.(check int) "degree of leaf" 1 (G.degree g 1);
  Alcotest.(check char) "centre label" 'c' (G.label g 0)

let test_line_cycle () =
  let line = G.line [ 'a'; 'b'; 'c'; 'd' ] in
  check_valid "line" line;
  Alcotest.(check int) "line edges" 3 (List.length (G.edges line));
  Alcotest.(check int) "line max degree" 2 (G.max_degree line);
  let cyc = G.cycle [ 'a'; 'b'; 'c'; 'd' ] in
  check_valid "cycle" cyc;
  Alcotest.(check int) "cycle edges" 4 (List.length (G.edges cyc));
  Alcotest.(check bool) "cycle wraps" true (G.adjacent cyc 0 3)

let test_grid_torus () =
  let g = G.grid ~width:3 ~height:4 (fun x y -> (x + y) mod 2) in
  check_valid "grid" g;
  Alcotest.(check int) "grid nodes" 12 (G.nodes g);
  Alcotest.(check int) "grid edges" ((2 * 4) + (3 * 3)) (List.length (G.edges g));
  Alcotest.(check bool) "grid degree bound 4" true (G.max_degree g <= 4);
  let t = G.torus ~width:3 ~height:3 (fun _ _ -> 0) in
  check_valid "torus" t;
  List.iter
    (fun v -> Alcotest.(check int) "torus 4-regular" 4 (G.degree t v))
    (Listx.range (G.nodes t))

let test_label_count () =
  let g = G.cycle [ 'a'; 'b'; 'a'; 'c' ] in
  Alcotest.(check int) "a count" 2 (M.count (G.label_count g) 'a');
  Alcotest.(check int) "b count" 1 (M.count (G.label_count g) 'b')

let test_of_edges_validation () =
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.of_edges: self-loop") (fun () ->
      ignore (G.of_edges ~labels:[| 'a'; 'b' |] [ (0, 0) ]));
  Alcotest.check_raises "out of range" (Invalid_argument "Graph.of_edges: node out of range")
    (fun () -> ignore (G.of_edges ~labels:[| 'a'; 'b' |] [ (0, 2) ]));
  (* duplicate edges merged *)
  let g = G.of_edges ~labels:[| 'a'; 'b' |] [ (0, 1); (1, 0); (0, 1) ] in
  Alcotest.(check int) "merged" 1 (List.length (G.edges g))

let test_connectivity () =
  let disconnected = G.of_edges ~labels:[| 'a'; 'b'; 'c'; 'd' |] [ (0, 1); (2, 3) ] in
  Alcotest.(check bool) "disconnected" false (G.is_connected disconnected);
  (match G.validate disconnected with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "validation should fail");
  match G.validate (G.line [ 'a'; 'b' ]) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "two nodes violate the convention"

let test_random_connected () =
  let rng = Prng.create 123 in
  for k = 3 to 12 do
    let labels = List.init k (fun i -> i mod 3) in
    let g = G.random_connected rng ~degree_bound:3 labels in
    Alcotest.(check bool) "connected" true (G.is_connected g);
    Alcotest.(check bool) "degree bound" true (G.max_degree g <= 3);
    Alcotest.(check bool) "labels preserved" true
      (M.equal (G.label_count g) (M.of_list labels))
  done

let test_cycle_cover () =
  let labels = [ 'a'; 'b'; 'c' ] in
  let base = G.cycle labels in
  let cover = G.cycle_cover ~fold:3 labels in
  Alcotest.(check int) "cover size" 9 (G.nodes cover);
  let f = G.cycle_cover_map ~fold:3 labels in
  Alcotest.(check bool) "is covering map" true (G.is_covering_map ~covering:cover ~base f);
  (* label count scales *)
  Alcotest.(check bool) "label count scales" true
    (M.equal (G.label_count cover) (M.scale 3 (G.label_count base)))

let test_covering_map_rejects () =
  let base = G.cycle [ 'a'; 'b'; 'c' ] in
  let not_cover = G.cycle [ 'a'; 'b'; 'c'; 'a' ] in
  Alcotest.(check bool) "4-cycle does not cover 3-cycle" false
    (G.is_covering_map ~covering:not_cover ~base (fun i -> i mod 3))

let test_find_cycle_edge () =
  let tree = G.star ~centre:'a' ~leaves:[ 'b'; 'c' ] in
  Alcotest.(check bool) "tree has no cycle edge" true (G.find_cycle_edge tree = None);
  let cyc = G.cycle [ 'a'; 'b'; 'c'; 'd' ] in
  match G.find_cycle_edge cyc with
  | None -> Alcotest.fail "cycle must have a cycle edge"
  | Some (u, v) -> Alcotest.(check bool) "really an edge" true (G.adjacent cyc u v)

let test_chain_of_copies () =
  let g = G.cycle [ 'a'; 'a'; 'b' ] in
  let h = G.cycle [ 'b'; 'b'; 'c'; 'c' ] in
  let ge = Option.get (G.find_cycle_edge g) in
  let he = Option.get (G.find_cycle_edge h) in
  let chained, back = G.chain_of_copies ~g ~g_edge:ge ~g_copies:3 ~h ~h_edge:he ~h_copies:5 in
  check_valid "chained graph" chained;
  Alcotest.(check int) "size" ((3 * 3) + (5 * 4)) (G.nodes chained);
  (* Every node maps back to a node of G or H with the same label. *)
  List.iter
    (fun x ->
      match back x with
      | `G (_, v) -> Alcotest.(check char) "g label" (G.label g v) (G.label chained x)
      | `H (_, v) -> Alcotest.(check char) "h label" (G.label h v) (G.label chained x))
    (Listx.range (G.nodes chained));
  (* Label count is the sum of the copies. *)
  Alcotest.(check bool) "label count" true
    (M.equal (G.label_count chained)
       (M.sum (M.scale 3 (G.label_count g)) (M.scale 5 (G.label_count h))))

let test_hypercube () =
  let g = G.hypercube ~dim:3 (fun i -> i mod 2) in
  check_valid "Q3" g;
  Alcotest.(check int) "8 nodes" 8 (G.nodes g);
  Alcotest.(check int) "12 edges" 12 (List.length (G.edges g));
  List.iter (fun v -> Alcotest.(check int) "3-regular" 3 (G.degree g v)) (Listx.range 8)

let test_complete_bipartite () =
  let g = G.complete_bipartite [ 'a'; 'a' ] [ 'b'; 'b'; 'b' ] in
  check_valid "K23" g;
  Alcotest.(check int) "6 edges" 6 (List.length (G.edges g));
  Alcotest.(check bool) "cross edges only" true
    (List.for_all (fun (u, v) -> G.label g u <> G.label g v) (G.edges g))

let test_binary_tree () =
  let g = G.binary_tree [ 'r'; 'a'; 'b'; 'c'; 'd' ] in
  check_valid "tree" g;
  Alcotest.(check int) "n-1 edges" 4 (List.length (G.edges g));
  Alcotest.(check bool) "degree bound 3" true (G.max_degree g <= 3);
  Alcotest.(check bool) "no cycle edge" true (G.find_cycle_edge g = None)

let test_barbell () =
  let g = G.barbell [ 'a'; 'a'; 'a' ] ~bridge:[ 'x'; 'x' ] [ 'b'; 'b'; 'b' ] in
  check_valid "barbell" g;
  Alcotest.(check int) "8 nodes" 8 (G.nodes g);
  (* 3+3 clique edges + 3 path edges *)
  Alcotest.(check int) "edges" 9 (List.length (G.edges g));
  let g0 = G.barbell [ 'a'; 'a' ] ~bridge:[] [ 'b'; 'b' ] in
  check_valid "barbell no bridge" g0;
  Alcotest.(check bool) "joined directly" true (G.adjacent g0 1 2)

let test_to_dot () =
  let g = G.cycle [ 'a'; 'b'; 'c' ] in
  let dot = Format.asprintf "%a" (G.to_dot Format.pp_print_char) g in
  Alcotest.(check bool) "has header" true (String.length dot > 0 && String.sub dot 0 7 = "graph g");
  Alcotest.(check bool) "mentions an edge" true
    (List.exists (fun line -> line = "  n0 -- n1;") (String.split_on_char '\n' dot))

let test_relabel () =
  let g = G.cycle [ 1; 2; 3 ] in
  let g' = G.relabel string_of_int g in
  Alcotest.(check string) "relabel" "2" (G.label g' 1)

let prop_random_graph =
  QCheck.Test.make ~name:"random graphs valid" ~count:50
    QCheck.(pair (int_range 3 15) (int_range 2 5))
    (fun (n, bound) ->
      let rng = Prng.create (n + (100 * bound)) in
      let g = G.random_connected rng ~degree_bound:bound (List.init n (fun i -> i mod 2)) in
      G.is_connected g && G.max_degree g <= bound && G.nodes g = n)

(* Certifies the symmetry groups used by the packed engine's quotient
   construction: every element must be a graph automorphism (adjacency
   preservation is all the reduction needs — labels may vary freely). *)
let prop_symmetry_groups_are_automorphisms =
  let module Sym = Dda_verify.Symmetry in
  QCheck.Test.make ~name:"symmetry groups are graph automorphisms" ~count:40
    QCheck.(int_range 3 7)
    (fun n ->
      let labels = List.init n (fun i -> i mod 3) in
      let all_autos g sym =
        Array.for_all (G.is_automorphism g) (Sym.perms sym)
      in
      all_autos (G.line labels) (Sym.line n)
      && all_autos (G.cycle labels) (Sym.cycle n)
      && all_autos
           (G.star ~centre:(List.hd labels) ~leaves:(List.tl labels))
           (Sym.star ~centre:0 n)
      && (n > 5 || all_autos (G.clique labels) (Sym.clique n)))

let test_is_automorphism_rejects () =
  (* swapping the centre of a star with a leaf breaks adjacency *)
  let star = G.star ~centre:'c' ~leaves:[ 'a'; 'a'; 'b' ] in
  let swap01 = [| 1; 0; 2; 3 |] in
  Alcotest.(check bool) "star centre swap" false (G.is_automorphism star swap01);
  (* a non-permutation (repeated image) is rejected outright *)
  Alcotest.(check bool)
    "non-permutation" false
    (G.is_automorphism (G.cycle [ 'a'; 'b'; 'c' ]) [| 0; 0; 2 |]);
  (* rotation is an automorphism of a cycle whatever the labels *)
  Alcotest.(check bool)
    "cycle rotation" true
    (G.is_automorphism (G.cycle [ 'a'; 'b'; 'c' ]) [| 1; 2; 0 |])

let () =
  Alcotest.run "graph"
    [
      ( "families",
        [
          Alcotest.test_case "clique" `Quick test_clique;
          Alcotest.test_case "star" `Quick test_star;
          Alcotest.test_case "line and cycle" `Quick test_line_cycle;
          Alcotest.test_case "grid and torus" `Quick test_grid_torus;
          Alcotest.test_case "label count" `Quick test_label_count;
          Alcotest.test_case "of_edges validation" `Quick test_of_edges_validation;
          Alcotest.test_case "connectivity" `Quick test_connectivity;
          Alcotest.test_case "random connected" `Quick test_random_connected;
          Alcotest.test_case "hypercube" `Quick test_hypercube;
          Alcotest.test_case "complete bipartite" `Quick test_complete_bipartite;
          Alcotest.test_case "binary tree" `Quick test_binary_tree;
          Alcotest.test_case "barbell" `Quick test_barbell;
          Alcotest.test_case "relabel" `Quick test_relabel;
          Alcotest.test_case "dot export" `Quick test_to_dot;
        ] );
      ( "coverings",
        [
          Alcotest.test_case "cycle cover" `Quick test_cycle_cover;
          Alcotest.test_case "covering map rejects" `Quick test_covering_map_rejects;
          Alcotest.test_case "find cycle edge" `Quick test_find_cycle_edge;
          Alcotest.test_case "Lemma 3.1 chain" `Quick test_chain_of_copies;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_random_graph;
          QCheck_alcotest.to_alcotest prop_symmetry_groups_are_automorphisms;
          Alcotest.test_case "is_automorphism rejects" `Quick
            test_is_automorphism_rejects;
        ] );
    ]
