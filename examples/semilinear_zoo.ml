(* The semilinear landscape around the paper.

   Population protocols compute exactly the semilinear predicates (Angluin
   et al., the paper's reference point [6]/[3]); Lemma 4.10 carries them
   into DAF; the paper's DAF = NL then shows counting + pseudo-stochastic
   fairness strictly exceeds them (primality is NL but not semilinear).

   This demo builds semilinear predicates compositionally — thresholds,
   remainders, boolean combinations — runs them as rendez-vous protocols,
   verifies them exactly, compiles one through Lemma 4.10 and checks the
   compiled run is an extension of the native one.

   Run with:  dune exec examples/semilinear_zoo.exe *)

module G = Dda_graph.Graph
module M = Dda_multiset.Multiset
module P = Dda_presburger.Predicate
module Pop = Dda_extensions.Population
module SLP = Dda_protocols.Semilinear_pop
module Decide = Dda_verify.Decide
module Sim = Dda_extensions.Simulation_check

let show name protocol predicate counts =
  Format.printf "@.%s   [%a]@." name P.pp predicate;
  List.iter
    (fun count ->
      let labels = M.to_list (M.of_counts count) in
      let g = G.cycle labels in
      let space = Pop.space ~max_configs:400_000 protocol g in
      let verdict = Decide.pseudo_stochastic space in
      let expected = P.holds predicate (M.of_counts count) in
      Format.printf "  %-18s expected %-5b verified: %a  %s@."
        (Format.asprintf "%a" (M.pp Format.pp_print_string) (M.of_counts count))
        expected Decide.pp_verdict verdict
        (if Decide.verdict_bool verdict = Some expected then "OK" else "MISMATCH"))
    counts

let () =
  let majority = SLP.threshold ~coeffs:[ ("a", 1); ("b", -1) ] ~c:1 in
  show "strict majority (threshold protocol)" majority (P.majority "a" "b")
    [ [ ("a", 2); ("b", 1) ]; [ ("a", 2); ("b", 2) ]; [ ("a", 1); ("b", 3) ] ];

  let even = SLP.remainder ~coeffs:[ ("a", 1); ("b", 1) ] ~m:2 ~r:0 in
  show "even number of nodes (remainder protocol)" even
    (P.Mod (P.linear [ ("a", 1); ("b", 1) ], 0, 2))
    [ [ ("a", 2); ("b", 1) ]; [ ("a", 2); ("b", 2) ] ];

  show "majority AND even (product protocol)"
    (SLP.conjunction majority even)
    (P.And (P.majority "a" "b", P.Mod (P.linear [ ("a", 1); ("b", 1) ], 0, 2)))
    [ [ ("a", 3); ("b", 1) ]; [ ("a", 2); ("b", 1) ]; [ ("a", 1); ("b", 3) ] ];

  show "NOT majority (complement)" (SLP.complement majority) (P.Not (P.majority "a" "b"))
    [ [ ("a", 2); ("b", 1) ]; [ ("a", 1); ("b", 2) ] ];

  (* Lemma 4.10: the same protocol as a DAF automaton, with the extension
     relation checked mechanically on an observed run. *)
  Format.printf "@.Lemma 4.10 compilation of the majority protocol:@.";
  let g = G.cycle [ "a"; "a"; "b" ] in
  (match Decide.pseudo_stochastic (Dda_verify.Space.explore ~max_configs:500_000 (Pop.compile majority) g) with
  | v -> Format.printf "  exact verdict of the compiled automaton on 2a1b: %a@." Decide.pp_verdict v);
  (match Sim.check_population ~seed:5 majority g with
  | Ok report -> Format.printf "  extension check: %a@." Sim.pp_report report
  | Error e -> Format.printf "  extension check FAILED: %s@." e);

  Format.printf
    "@.Beyond this zoo lies the paper's separation: DAF also decides@.\
     non-semilinear NL predicates such as prime(n) — see@.\
     examples/prime_network.exe.@."
