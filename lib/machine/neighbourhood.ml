module Listx = Dda_util.Listx

type 's t = ('s * int) list

let of_states ~beta neighbour_states =
  if beta < 1 then invalid_arg "Neighbourhood.of_states: beta must be >= 1";
  List.map
    (fun (s, c) -> (s, min c beta))
    (Listx.group_counts Stdlib.compare neighbour_states)

let count n q = try List.assoc q n with Not_found -> 0
let present n q = count n q > 0
let states n = List.map fst n

let count_where p n =
  List.fold_left (fun acc (s, c) -> if p s then acc + c else acc) 0 n

let exists_where p n = List.exists (fun (s, _) -> p s) n
let for_all p n = List.for_all (fun (s, _) -> p s) n
let is_empty n = n = []

let map f n =
  Listx.dedup_sorted Stdlib.compare (List.map (fun (s, c) -> (f s, c)) n)
  |> List.map (fun (s', _) ->
         (s', List.fold_left (fun acc (s, c) -> if f s = s' then acc + c else acc) 0 n))

let pp pp_state fmt n =
  let pp_pair fmt (s, c) = Format.fprintf fmt "%a×%d" pp_state s c in
  Format.fprintf fmt "⟨%a⟩" (Listx.pp_list ~sep:", " pp_pair) n
