module Graph = Dda_graph.Graph
module Machine = Dda_machine.Machine
module Config = Dda_runtime.Config
module Listx = Dda_util.Listx
module Prng = Dda_util.Prng

type ('l, 's) t = {
  init : 'l -> 's;
  delta : 's -> 's -> 's * 's;
  accepting : 's -> bool;
  rejecting : 's -> bool;
  pp_state : Format.formatter -> 's -> unit;
}

let create ~init ~delta ~accepting ~rejecting
    ?(pp_state = fun fmt _ -> Format.pp_print_string fmt "<state>") () =
  { init; delta; accepting; rejecting; pp_state }

let initial p g = Config.of_states (Array.init (Graph.nodes g) (fun v -> p.init (Graph.label g v)))

let step p g c (u, v) =
  if not (Graph.adjacent g u v) then invalid_arg "Population.step: nodes are not adjacent";
  let pu, qv = (Config.state c u, Config.state c v) in
  let pu', qv' = p.delta pu qv in
  let arr = Config.to_array c in
  arr.(u) <- pu';
  arr.(v) <- qv';
  Config.of_states arr

let ordered_pairs g =
  List.concat_map (fun (u, v) -> [ (u, v); (v, u) ]) (Graph.edges g)

let verdict p c =
  let n = Config.size c in
  let rec go v all_acc all_rej =
    if (not all_acc) && not all_rej then `Mixed
    else if v >= n then if all_acc then `Accepting else `Rejecting
    else go (v + 1) (all_acc && p.accepting (Config.state c v)) (all_rej && p.rejecting (Config.state c v))
  in
  go 0 true true

let simulate_random ~seed ~max_steps p g =
  let rng = Prng.create seed in
  let pairs = Array.of_list (ordered_pairs g) in
  let c = ref (initial p g) in
  let steps = ref 0 in
  let quiescent c =
    Array.for_all (fun pair -> Config.equal (step p g c pair) c) pairs
  in
  let continue = ref true in
  while !continue && !steps < max_steps do
    if !steps mod (4 * Array.length pairs) = 0 && quiescent !c then continue := false
    else begin
      c := step p g !c (Prng.pick_arr rng pairs);
      incr steps
    end
  done;
  (!c, !steps)

let settle_time ~seed ~max_steps p g =
  let rng = Prng.create seed in
  let pairs = Array.of_list (ordered_pairs g) in
  let c = ref (initial p g) in
  let last_change = ref 0 in
  let current = ref (verdict p !c) in
  for i = 1 to max_steps do
    c := step p g !c (Prng.pick_arr rng pairs);
    let v = verdict p !c in
    if v <> !current then begin
      current := v;
      last_change := i
    end
  done;
  match !current with
  | `Accepting -> Some (!last_change, `Accepting)
  | `Rejecting -> Some (!last_change, `Rejecting)
  | `Mixed -> None

let space ~max_configs p g =
  let pairs = ordered_pairs g in
  let expand arr =
    let c = Config.of_states arr in
    let succs =
      List.filter_map
        (fun pair ->
          let c' = step p g c pair in
          if Config.equal c c' then None else Some (0, Config.to_array c'))
        pairs
    in
    Listx.dedup_sorted Stdlib.compare succs
  in
  Dda_verify.Space.explore_custom ~max_configs ~kind:Dda_verify.Space.Counted
    ~node_count:(Graph.nodes g)
    ~initial:(Config.to_array (initial p g))
    ~expand
    ~accepting:(Array.for_all p.accepting)
    ~rejecting:(Array.for_all p.rejecting)
    ~describe:(fun arr -> Format.asprintf "%a" (Config.pp p.pp_state) (Config.of_states arr))

(* --- Lemma 4.10: rendez-vous by search/answer/confirm handshakes --------- *)

type 's state = Plain of 's | Search of 's | Answer of 's | Confirm of 's * 's

let pp_state pp_base fmt = function
  | Plain q -> pp_base fmt q
  | Search q -> Format.fprintf fmt "%a?" pp_base q
  | Answer q -> Format.fprintf fmt "%a!" pp_base q
  | Confirm (q, q') -> Format.fprintf fmt "%a✓%a" pp_base q pp_base q'

(* The unique-non-waiting-neighbour observation f(N) of Figure 4.  With
   counting bound 2, a capped count of 1 is exact, so "exactly one
   non-waiting neighbour" is detectable. *)
type 's observation = All_waiting | One of 's state | Crowd

let observe n =
  let non_waiting =
    List.filter (function Plain _, _ -> false | _, _ -> true) n
  in
  match non_waiting with
  | [] -> All_waiting
  | [ (s, 1) ] -> One s
  | _ -> Crowd

let original = function Plain q | Search q | Answer q | Confirm (q, _) -> q

let compile p =
  let delta s n =
    match (s, observe n) with
    | Plain q, All_waiting -> Search q
    | Plain q, One (Search _) -> Answer q
    | Search q, One (Answer q') -> Confirm (q, fst (p.delta q q'))
    | Answer q, One (Confirm (q', _)) -> Plain (snd (p.delta q' q))
    | Confirm (_, post), All_waiting -> Plain post
    | (Plain _ as keep), _ -> keep
    | other, _ -> Plain (original other) (* cancel the handshake *)
  in
  Machine.create ~name:"population+rv" ~beta:2
    ~init:(fun l -> Plain (p.init l))
    ~delta
    ~accepting:(fun s -> p.accepting (original s))
    ~rejecting:(fun s -> p.rejecting (original s))
    ~pp_state:(pp_state p.pp_state) ()
