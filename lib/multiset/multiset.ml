type 'a t = ('a * int) list
(* Invariant: strictly sorted by Stdlib.compare on elements; all counts > 0. *)

let empty = []
let is_empty m = m = []

let singleton x = [ (x, 1) ]

let rec insert x k m =
  if k = 0 then m
  else
    match m with
    | [] -> [ (x, k) ]
    | (y, c) :: rest ->
      let cmp = Stdlib.compare x y in
      if cmp < 0 then (x, k) :: m
      else if cmp = 0 then
        let c' = c + k in
        if c' = 0 then rest
        else if c' < 0 then invalid_arg "Multiset: negative count"
        else (y, c') :: rest
      else (y, c) :: insert x k rest

let add ?(times = 1) x m =
  if times < 0 then invalid_arg "Multiset.add: negative times";
  insert x times m

let of_list l = List.fold_left (fun m x -> add x m) empty l

let of_counts l =
  List.fold_left
    (fun m (x, k) ->
      if k < 0 then invalid_arg "Multiset.of_counts: negative count" else insert x k m)
    empty l

let to_counts m = m

let to_list m = List.concat_map (fun (x, c) -> List.init c (fun _ -> x)) m

let count m x = try List.assoc x m with Not_found -> 0

let support m = List.map fst m

let size m = List.fold_left (fun acc (_, c) -> acc + c) 0 m

let remove ?(times = 1) x m =
  if times < 0 then invalid_arg "Multiset.remove: negative times";
  let present = count m x in
  insert x (-min times present) m

let sum m1 m2 = List.fold_left (fun acc (x, c) -> insert x c acc) m1 m2

let scale k m =
  if k < 0 then invalid_arg "Multiset.scale: negative factor"
  else if k = 0 then empty
  else List.map (fun (x, c) -> (x, k * c)) m

let map f m = List.fold_left (fun acc (x, c) -> insert (f x) c acc) empty m

let fold f m acc = List.fold_left (fun acc (x, c) -> f x c acc) acc m

let equal m1 m2 = m1 = m2
let compare m1 m2 = Stdlib.compare m1 m2

let cutoff beta m =
  if beta < 0 then invalid_arg "Multiset.cutoff: negative bound";
  if beta = 0 then empty else List.map (fun (x, c) -> (x, min c beta)) m

let leq m1 m2 = List.for_all (fun (x, c) -> c <= count m2 x) m1

let star_leq m1 m2 = leq m1 m2 && List.length m1 = List.length m2

let to_vector alphabet m =
  let v = Array.make (List.length alphabet) 0 in
  List.iter
    (fun (x, c) ->
      match Dda_util.Listx.find_index_opt (fun y -> Stdlib.compare x y = 0) alphabet with
      | Some i -> v.(i) <- v.(i) + c
      | None -> invalid_arg "Multiset.to_vector: element outside alphabet")
    m;
  v

let of_vector alphabet v =
  if Array.length v <> List.length alphabet then invalid_arg "Multiset.of_vector: length";
  of_counts (List.mapi (fun i x -> (x, v.(i))) alphabet)

let enumerate alphabet ~max_count =
  let choices = List.map (fun x -> List.map (fun c -> (x, c)) (Dda_util.Listx.range_in 0 max_count)) alphabet in
  List.map of_counts (Dda_util.Listx.cartesian_n choices)

let enumerate_of_size alphabet ~size =
  let rec go alphabet size =
    match alphabet with
    | [] -> if size = 0 then [ [] ] else []
    | x :: rest ->
      List.concat_map
        (fun c -> List.map (fun tl -> (x, c) :: tl) (go rest (size - c)))
        (Dda_util.Listx.range_in 0 size)
  in
  List.map of_counts (go alphabet size)

let pp pp_elt fmt m =
  let pp_pair fmt (x, c) = Format.fprintf fmt "%a:%d" pp_elt x c in
  Format.fprintf fmt "{%a}" (Dda_util.Listx.pp_list ~sep:", " pp_pair) m
