(** Finite machines as explicit tables, and bisimulation minimisation.

    A functional machine over an enumerated state set can be {e tabulated}:
    its transition function becomes a finite table indexed by (state,
    capped neighbourhood profile), where a profile assigns each state a
    count in [\[0, β\]].  Tables support inspection, serialisation-style
    dumps, and — the interesting part — {e minimisation}: the coarsest
    bisimulation quotient that preserves acceptance, rejection and the
    transition behaviour.

    Bisimilarity here must respect the communication structure: two states
    are equivalent only if they react equivalently to every profile {e and}
    their reactions cannot distinguish equivalent neighbour states.  The
    refinement loop therefore works with profiles over the current classes:
    a state's signature maps each class-profile to the set of classes its
    δ can produce across all concrete profiles projecting to it; blocks
    split until every signature is single-valued and constant on each
    block.  The resulting quotient machine decides exactly the same
    property (configurations project class-wise, verdicts are preserved).

    Compiled automata (Lemmas 4.7/4.9/4.10) often carry bookkeeping that is
    behaviourally redundant; minimisation measures — and removes — that
    redundancy.  Profile enumeration costs [(β+1)^{|Q|}], so tabulation is
    for machines with at most ~15 states. *)

type ('l, 's) t

val tabulate :
  labels:'l list -> states:'s list -> ('l, 's) Machine.t -> ('l, 's) t
(** @raise Invalid_argument if a state outside [states] is produced by δ or
    δ₀, if [states] has duplicates, or if the profile table would exceed
    two million entries. *)

val state_count : ('l, 's) t -> int
val profile_count : ('l, 's) t -> int

val reachable_states :
  ?max_states:int -> labels:'l list -> ('l, 's) Machine.t -> 's list option
(** The states reachable from the initial states under arbitrary capped
    profiles, in a {e deterministic} discovery order (label order first,
    then profile-enumeration order per closure pass) — suitable as a
    canonical state order for {!tabulate} and hence for content
    fingerprints.  Returns [None] when more than [max_states] (default 12)
    states are found or a closure pass would exceed the internal table
    budget; the size check happens before each pass, so infeasible machines
    bail cheaply. *)

val canonical_dump : label_key:('l -> string) -> ('l, 's) t -> string
(** A deterministic serialisation of the table — β, labels, initial-state
    ids, acceptance vectors and the full δ table over dense ids.  Two
    tabulations built over the same state order produce equal dumps iff
    the tables are identical, so [canonical_dump] of a table built over
    {!reachable_states} order is a stable machine fingerprint input. *)

val to_machine : ('l, 's) t -> ('l, int) Machine.t
(** The tabulated machine over integer state ids (behaviourally identical
    to the original on the enumerated state set). *)

val state_of_id : ('l, 's) t -> int -> 's

val minimise : ('l, 's) t -> (('l, int) Machine.t * ('s -> int)) option
(** The bisimulation quotient: the machine over class ids and the
    projection from original states.  [None] when no well-defined quotient
    coarser than the identity exists (some state reacts differently to
    concrete profiles that are equivalent class-wise) — in that case the
    original machine is already its own minimal form at this granularity. *)

val minimised_state_count : ('l, 's) t -> int
(** Number of classes of {!minimise} ([state_count] when it returns
    [None]). *)
