module Multiset = Dda_multiset.Multiset
module Listx = Dda_util.Listx

type linear = { coeffs : (string * int) list; const : int }

type t =
  | True
  | False
  | Ge of linear
  | Mod of linear * int * int
  | Not of t
  | And of t * t
  | Or of t * t
  | Opaque of string * ((string -> int) -> bool)

let linear ?(const = 0) coeffs = { coeffs; const }
let var x = linear [ (x, 1) ]

let shift l d = { l with const = l.const + d }
let negate l = { coeffs = List.map (fun (x, c) -> (x, -c)) l.coeffs; const = -l.const }

let ge l = Ge l
let gt l = Ge (shift l (-1))
let lt l = Ge (shift (negate l) (-1))
let le l = Ge (negate l)
let eq l = And (ge l, le l)

let at_least x k = Ge (linear ~const:(-k) [ (x, 1) ])
let exists_label x = at_least x 1
let majority a b = gt (linear [ (a, 1); (b, -1) ])
let weak_majority a b = ge (linear [ (a, 1); (b, -1) ])
let homogeneous_threshold coeffs = ge (linear coeffs)

let divides x y =
  let f env =
    let vx = env x and vy = env y in
    if vx = 0 then vy = 0 else vy mod vx = 0
  in
  Opaque (Printf.sprintf "%s | %s" x y, f)

let is_prime n =
  if n < 2 then false
  else begin
    let rec go d = d * d > n || (n mod d <> 0 && go (d + 1)) in
    go 2
  end

let size_prime names =
  let f env = is_prime (Listx.sum (List.map env names)) in
  Opaque (Printf.sprintf "prime(%s)" (String.concat "+" names), f)

let conj = function [] -> True | p :: rest -> List.fold_left (fun a b -> And (a, b)) p rest
let disj = function [] -> False | p :: rest -> List.fold_left (fun a b -> Or (a, b)) p rest

let eval_linear l env =
  List.fold_left (fun acc (x, c) -> acc + (c * env x)) l.const l.coeffs

let rec eval p env =
  match p with
  | True -> true
  | False -> false
  | Ge l -> eval_linear l env >= 0
  | Mod (l, r, m) ->
    if m < 1 then invalid_arg "Predicate: modulus must be >= 1";
    let v = eval_linear l env in
    ((v mod m) + m) mod m = ((r mod m) + m) mod m
  | Not q -> not (eval q env)
  | And (q1, q2) -> eval q1 env && eval q2 env
  | Or (q1, q2) -> eval q1 env || eval q2 env
  | Opaque (_, f) -> f env

let holds p l = eval p (Multiset.count l)

let rec vars_acc p acc =
  match p with
  | True | False -> acc
  | Ge l | Mod (l, _, _) -> List.map fst l.coeffs @ acc
  | Not q -> vars_acc q acc
  | And (q1, q2) | Or (q1, q2) -> vars_acc q1 (vars_acc q2 acc)
  | Opaque _ -> acc

let vars p = Listx.dedup_sorted Stdlib.compare (vars_acc p [])

(* --- Classifiers -------------------------------------------------------- *)

let env_of_counts alphabet counts x =
  let rec go names values =
    match (names, values) with
    | [], _ -> 0
    | n :: _, v :: _ when n = x -> v
    | _ :: ns, _ :: vs -> go ns vs
    | _, [] -> 0
  in
  go alphabet counts

let all_boxes alphabet box =
  Listx.cartesian_n (List.map (fun _ -> Listx.range_in 0 box) alphabet)

let is_trivial ~alphabet ~box p =
  match all_boxes alphabet box with
  | [] -> true
  | first :: rest ->
    let v0 = eval p (env_of_counts alphabet first) in
    List.for_all (fun counts -> eval p (env_of_counts alphabet counts) = v0) rest

let respects_cutoff ~alphabet ~box ~k p =
  List.for_all
    (fun counts ->
      let cut = List.map (fun c -> min c k) counts in
      eval p (env_of_counts alphabet counts) = eval p (env_of_counts alphabet cut))
    (all_boxes alphabet box)

let find_cutoff ~alphabet ~box p =
  (* [k = box] would pass vacuously (no count in the box exceeds it), so the
     search stops at [box - 1], where the box still contains witnesses. *)
  List.find_opt (fun k -> respects_cutoff ~alphabet ~box ~k p) (Listx.range_in 0 (box - 1))

let is_ism ~alphabet ~box ~factors p =
  List.for_all
    (fun counts ->
      let v = eval p (env_of_counts alphabet counts) in
      List.for_all
        (fun lambda ->
          lambda <= 0
          || eval p (env_of_counts alphabet (List.map (fun c -> lambda * c) counts)) = v)
        factors)
    (all_boxes alphabet box)

let rec syntactic_cutoff = function
  | True | False -> Some 1
  | Ge { coeffs = [ (_, 1) ]; const } -> Some (max 1 (-const))
  | Ge _ | Mod _ | Opaque _ -> None
  | Not q -> syntactic_cutoff q
  | And (q1, q2) | Or (q1, q2) -> (
    match (syntactic_cutoff q1, syntactic_cutoff q2) with
    | Some a, Some b -> Some (max a b)
    | _ -> None)

let as_homogeneous_threshold = function
  | Ge { coeffs; const = 0 } -> Some coeffs
  | _ -> None

(* --- Printing ------------------------------------------------------------ *)

let pp_linear fmt l =
  let pp_term first fmt (x, c) =
    if c = 1 then Format.fprintf fmt "%s%s" (if first then "" else " + ") x
    else if c = -1 then Format.fprintf fmt "%s%s" (if first then "-" else " - ") x
    else if c >= 0 then Format.fprintf fmt "%s%d·%s" (if first then "" else " + ") c x
    else Format.fprintf fmt "%s%d·%s" (if first then "-" else " - ") (abs c) x
  in
  (match l.coeffs with
  | [] -> Format.pp_print_string fmt "0"
  | (x, c) :: rest ->
    pp_term true fmt (x, c);
    List.iter (fun term -> pp_term false fmt term) rest);
  if l.const > 0 then Format.fprintf fmt " + %d" l.const
  else if l.const < 0 then Format.fprintf fmt " - %d" (abs l.const)

let rec pp fmt = function
  | True -> Format.pp_print_string fmt "true"
  | False -> Format.pp_print_string fmt "false"
  | Ge l -> Format.fprintf fmt "%a >= 0" pp_linear l
  | Mod (l, r, m) -> Format.fprintf fmt "%a ≡ %d (mod %d)" pp_linear l r m
  | Not q -> Format.fprintf fmt "¬(%a)" pp q
  | And (q1, q2) -> Format.fprintf fmt "(%a ∧ %a)" pp q1 pp q2
  | Or (q1, q2) -> Format.fprintf fmt "(%a ∨ %a)" pp q1 pp q2
  | Opaque (name, _) -> Format.pp_print_string fmt name

let to_string p = Format.asprintf "%a" pp p

(* --- Parser --------------------------------------------------------------- *)

(* A hand-rolled recursive-descent parser over a token list. *)
type token =
  | T_num of int
  | T_var of string
  | T_lpar
  | T_rpar
  | T_not
  | T_and
  | T_or
  | T_plus
  | T_minus
  | T_star
  | T_percent
  | T_cmp of string
  | T_true
  | T_false

exception Parse_error of string

let tokenize input =
  let n = String.length input in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      match input.[i] with
      | ' ' | '\t' | '\n' -> go (i + 1) acc
      | '(' -> go (i + 1) (T_lpar :: acc)
      | ')' -> go (i + 1) (T_rpar :: acc)
      | '+' -> go (i + 1) (T_plus :: acc)
      | '-' -> go (i + 1) (T_minus :: acc)
      | '*' -> go (i + 1) (T_star :: acc)
      | '%' -> go (i + 1) (T_percent :: acc)
      | '&' ->
        if i + 1 < n && input.[i + 1] = '&' then go (i + 2) (T_and :: acc)
        else raise (Parse_error (Printf.sprintf "stray '&' at %d" i))
      | '|' ->
        if i + 1 < n && input.[i + 1] = '|' then go (i + 2) (T_or :: acc)
        else raise (Parse_error (Printf.sprintf "stray '|' at %d" i))
      | '!' ->
        if i + 1 < n && input.[i + 1] = '=' then go (i + 2) (T_cmp "!=" :: acc)
        else go (i + 1) (T_not :: acc)
      | '>' ->
        if i + 1 < n && input.[i + 1] = '=' then go (i + 2) (T_cmp ">=" :: acc)
        else go (i + 1) (T_cmp ">" :: acc)
      | '<' ->
        if i + 1 < n && input.[i + 1] = '=' then go (i + 2) (T_cmp "<=" :: acc)
        else go (i + 1) (T_cmp "<" :: acc)
      | '=' ->
        if i + 1 < n && input.[i + 1] = '=' then go (i + 2) (T_cmp "==" :: acc)
        else raise (Parse_error (Printf.sprintf "single '=' at %d (use '==')" i))
      | '0' .. '9' ->
        let j = ref i in
        while !j < n && input.[!j] >= '0' && input.[!j] <= '9' do
          incr j
        done;
        go !j (T_num (int_of_string (String.sub input i (!j - i))) :: acc)
      | ('a' .. 'z' | 'A' .. 'Z' | '_') ->
        let j = ref i in
        let ident c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_' in
        while !j < n && ident input.[!j] do
          incr j
        done;
        let word = String.sub input i (!j - i) in
        let tok =
          match word with "true" -> T_true | "false" -> T_false | v -> T_var v
        in
        go !j (tok :: acc)
      | c -> raise (Parse_error (Printf.sprintf "unexpected character %C at %d" c i))
  in
  go 0 []

(* linear := ["-"] term (("+"|"-") term)* ; term := NUM | VAR | NUM "*"? VAR *)
let parse_linear tokens =
  let rec term sign = function
    | T_num k :: T_star :: T_var v :: rest | T_num k :: T_var v :: rest ->
      (`Coeff (v, sign * k), rest)
    | T_num k :: rest -> (`Const (sign * k), rest)
    | T_var v :: rest -> (`Coeff (v, sign), rest)
    | _ -> raise (Parse_error "expected a number or label name")
  and loop acc_coeffs acc_const tokens =
    match tokens with
    | T_plus :: rest -> after 1 acc_coeffs acc_const rest
    | T_minus :: rest -> after (-1) acc_coeffs acc_const rest
    | rest -> ({ coeffs = List.rev acc_coeffs; const = acc_const }, rest)
  and after sign acc_coeffs acc_const tokens =
    match term sign tokens with
    | `Coeff (v, k), rest -> loop ((v, k) :: acc_coeffs) acc_const rest
    | `Const k, rest -> loop acc_coeffs (acc_const + k) rest
  in
  let sign, tokens = match tokens with T_minus :: rest -> (-1, rest) | _ -> (1, tokens) in
  after sign [] 0 tokens

let sub_linear l1 l2 =
  let neg = negate l2 in
  {
    coeffs =
      List.fold_left
        (fun acc (v, k) -> Dda_util.Listx.assoc_update v (fun c -> c + k) 0 acc)
        l1.coeffs neg.coeffs
      |> List.filter (fun (_, k) -> k <> 0);
    const = l1.const + neg.const;
  }

let rec parse_or tokens =
  let left, rest = parse_and tokens in
  match rest with
  | T_or :: more ->
    let right, rest' = parse_or more in
    (Or (left, right), rest')
  | _ -> (left, rest)

and parse_and tokens =
  let left, rest = parse_unary tokens in
  match rest with
  | T_and :: more ->
    let right, rest' = parse_and more in
    (And (left, right), rest')
  | _ -> (left, rest)

and parse_unary = function
  | T_not :: rest ->
    let p, rest' = parse_unary rest in
    (Not p, rest')
  | T_lpar :: rest -> (
    let p, rest' = parse_or rest in
    match rest' with
    | T_rpar :: more -> (p, more)
    | _ -> raise (Parse_error "expected ')'"))
  | T_true :: rest -> (True, rest)
  | T_false :: rest -> (False, rest)
  | tokens -> parse_atom tokens

and parse_atom tokens =
  let l1, rest = parse_linear tokens in
  match rest with
  | T_percent :: T_num m :: T_cmp "==" :: T_num r :: rest' -> (Mod (l1, r, m), rest')
  | T_cmp op :: rest' -> (
    let l2, rest'' = parse_linear rest' in
    let d = sub_linear l1 l2 in
    match op with
    | ">=" -> (ge d, rest'')
    | ">" -> (gt d, rest'')
    | "<=" -> (le d, rest'')
    | "<" -> (lt d, rest'')
    | "==" -> (eq d, rest'')
    | "!=" -> (Not (eq d), rest'')
    | _ -> raise (Parse_error ("unknown comparison " ^ op)))
  | _ -> raise (Parse_error "expected a comparison or '% m == r'")

let parse input =
  match
    let tokens = tokenize input in
    let p, rest = parse_or tokens in
    if rest <> [] then raise (Parse_error "trailing tokens after the predicate");
    p
  with
  | p -> Ok p
  | exception Parse_error msg -> Error msg
