module M = Dda_multiset.Multiset

let ms = Alcotest.testable (M.pp Format.pp_print_char) M.equal

let of_string s = M.of_list (List.init (String.length s) (String.get s))

let test_basic () =
  let m = of_string "aabc" in
  Alcotest.(check int) "count a" 2 (M.count m 'a');
  Alcotest.(check int) "count b" 1 (M.count m 'b');
  Alcotest.(check int) "count d" 0 (M.count m 'd');
  Alcotest.(check int) "size" 4 (M.size m);
  Alcotest.(check (list char)) "support" [ 'a'; 'b'; 'c' ] (M.support m);
  Alcotest.(check (list char)) "to_list sorted" [ 'a'; 'a'; 'b'; 'c' ] (M.to_list m)

let test_add_remove () =
  let m = of_string "ab" in
  Alcotest.check ms "add" (of_string "aab") (M.add 'a' m);
  Alcotest.check ms "add times" (of_string "aaab") (M.add ~times:2 'a' m);
  Alcotest.check ms "remove" (of_string "b") (M.remove 'a' m);
  Alcotest.check ms "remove absent" (of_string "ab") (M.remove 'z' m);
  Alcotest.check ms "remove more than present" (of_string "b") (M.remove ~times:5 'a' m)

let test_of_counts_merges () =
  Alcotest.check ms "merge" (of_string "aaab") (M.of_counts [ ('a', 2); ('b', 1); ('a', 1) ])

let test_cutoff () =
  let m = M.of_counts [ ('a', 5); ('b', 1); ('c', 3) ] in
  Alcotest.check ms "cutoff 2" (M.of_counts [ ('a', 2); ('b', 1); ('c', 2) ]) (M.cutoff 2 m);
  Alcotest.check ms "cutoff 0 empties" M.empty (M.cutoff 0 m);
  Alcotest.check ms "cutoff big is id" m (M.cutoff 10 m)

let test_cutoff_idempotent =
  QCheck.Test.make ~name:"cutoff idempotent and monotone" ~count:200
    QCheck.(pair (small_list (printable_char)) (int_range 0 5))
    (fun (l, k) ->
      let m = M.of_list l in
      let c = M.cutoff k m in
      M.equal (M.cutoff k c) c && M.leq c m)

let test_scale () =
  let m = of_string "aab" in
  Alcotest.check ms "scale 3" (M.of_counts [ ('a', 6); ('b', 3) ]) (M.scale 3 m);
  Alcotest.check ms "scale 0" M.empty (M.scale 0 m)

let test_scale_cutoff_law =
  (* The law used in Prop C.3: ⌈λ·L⌉_λ = λ·⌈L⌉₁. *)
  QCheck.Test.make ~name:"⌈λL⌉_λ = λ⌈L⌉₁" ~count:200
    QCheck.(pair (small_list (printable_char)) (int_range 1 6))
    (fun (l, lambda) ->
      let m = M.of_list l in
      M.equal (M.cutoff lambda (M.scale lambda m)) (M.scale lambda (M.cutoff 1 m)))

let test_sum () =
  Alcotest.check ms "sum" (of_string "aabbc") (M.sum (of_string "ab") (of_string "abc"))

let test_leq () =
  Alcotest.(check bool) "leq true" true (M.leq (of_string "ab") (of_string "aabc"));
  Alcotest.(check bool) "leq false" false (M.leq (of_string "aab") (of_string "abc"));
  Alcotest.(check bool) "empty leq" true (M.leq M.empty (of_string "a"))

let test_star_leq () =
  Alcotest.(check bool) "same support, pointwise <=" true
    (M.star_leq (of_string "ab") (of_string "aab"));
  Alcotest.(check bool) "support grows" false (M.star_leq (of_string "ab") (of_string "abc"));
  Alcotest.(check bool) "support shrinks" false (M.star_leq (of_string "ab") (of_string "aa"))

let test_vector_roundtrip () =
  let alphabet = [ 'a'; 'b'; 'c' ] in
  let m = M.of_counts [ ('a', 2); ('c', 1) ] in
  let v = M.to_vector alphabet m in
  Alcotest.(check (array int)) "vector" [| 2; 0; 1 |] v;
  Alcotest.check ms "roundtrip" m (M.of_vector alphabet v)

let test_map () =
  let m = of_string "aabc" in
  let collapsed = M.map (fun c -> if c = 'b' then 'a' else c) m in
  Alcotest.check ms "map collapses" (M.of_counts [ ('a', 3); ('c', 1) ]) collapsed

let test_enumerate () =
  let all = M.enumerate [ 'a'; 'b' ] ~max_count:2 in
  Alcotest.(check int) "9 multisets in 3x3 box" 9 (List.length all);
  Alcotest.(check bool) "contains empty" true (List.exists M.is_empty all)

let test_enumerate_of_size () =
  let all = M.enumerate_of_size [ 'a'; 'b'; 'c' ] ~size:4 in
  Alcotest.(check int) "compositions of 4 into 3 parts" 15 (List.length all);
  List.iter (fun m -> Alcotest.(check int) "size 4" 4 (M.size m)) all

let test_vector_errors () =
  Alcotest.check_raises "wrong length" (Invalid_argument "Multiset.of_vector: length")
    (fun () -> ignore (M.of_vector [ 'a'; 'b' ] [| 1 |]));
  Alcotest.check_raises "outside alphabet"
    (Invalid_argument "Multiset.to_vector: element outside alphabet") (fun () ->
      ignore (M.to_vector [ 'a' ] (of_string "ab")))

let test_negative_raises () =
  Alcotest.check_raises "negative count" (Invalid_argument "Multiset.of_counts: negative count")
    (fun () -> ignore (M.of_counts [ ('a', -1) ]))

let test_star_leq_partial_order =
  QCheck.Test.make ~name:"star order is a partial order" ~count:200
    QCheck.(triple (small_list (int_range 0 2)) (small_list (int_range 0 2)) (small_list (int_range 0 2)))
    (fun (l1, l2, l3) ->
      let a = M.of_list l1 and b = M.of_list l2 and c = M.of_list l3 in
      (* reflexive *)
      M.star_leq a a
      (* antisymmetric *)
      && ((not (M.star_leq a b && M.star_leq b a)) || M.equal a b)
      (* transitive *)
      && ((not (M.star_leq a b && M.star_leq b c)) || M.star_leq a c))

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ test_cutoff_idempotent; test_scale_cutoff_law; test_star_leq_partial_order ]

let () =
  Alcotest.run "multiset"
    [
      ( "multiset",
        [
          Alcotest.test_case "basic" `Quick test_basic;
          Alcotest.test_case "add/remove" `Quick test_add_remove;
          Alcotest.test_case "of_counts merges" `Quick test_of_counts_merges;
          Alcotest.test_case "cutoff" `Quick test_cutoff;
          Alcotest.test_case "scale" `Quick test_scale;
          Alcotest.test_case "sum" `Quick test_sum;
          Alcotest.test_case "leq" `Quick test_leq;
          Alcotest.test_case "star order" `Quick test_star_leq;
          Alcotest.test_case "vector roundtrip" `Quick test_vector_roundtrip;
          Alcotest.test_case "map" `Quick test_map;
          Alcotest.test_case "enumerate box" `Quick test_enumerate;
          Alcotest.test_case "enumerate size" `Quick test_enumerate_of_size;
          Alcotest.test_case "negative raises" `Quick test_negative_raises;
          Alcotest.test_case "vector errors" `Quick test_vector_errors;
        ] );
      ("properties", qsuite);
    ]
