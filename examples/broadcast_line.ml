(* Figure 2: weak broadcasts on a line of five nodes (Example 4.6), and
   their simulation by the three-phase protocol of Lemma 4.7.

   (a) a run prefix of the native weak-broadcast semantics, with the two
       non-adjacent ends broadcasting simultaneously;
   (b) a run prefix of the compiled automaton, where the same broadcast is
       spread over many neighbourhood transitions through intermediate
       (phase) states — an "extension" of the native run.

   Run with:  dune exec examples/broadcast_line.exe *)

module Graph = Dda_graph.Graph
module Machine = Dda_machine.Machine
module N = Dda_machine.Neighbourhood
module Config = Dda_runtime.Config
module Scheduler = Dda_scheduler.Scheduler
module Run = Dda_runtime.Run
module WB = Dda_extensions.Weak_broadcast

type abx = Xa | Xb | Xx

let pp_state fmt q =
  Format.pp_print_string fmt (match q with Xa -> "a" | Xb -> "b" | Xx -> "x")

(* Example 4.6: neighbourhood transition x ↦ a when an a-neighbour exists;
   broadcasts  a ↦ a, {x ↦ a}   and   b ↦ b, {b ↦ a, a ↦ x}. *)
let example : (char, abx) WB.t =
  let base =
    Machine.create ~name:"example-4.6" ~beta:1
      ~init:(fun l -> if l = 'b' then Xb else Xx)
      ~delta:(fun q n -> if q = Xx && N.present n Xa then Xa else q)
      ~accepting:(fun _ -> true)
      ~rejecting:(fun _ -> false)
      ~pp_state ()
  in
  let initiate = function Xa -> Some (Xa, 0) | Xb -> Some (Xb, 1) | Xx -> None in
  let respond f q =
    if f = 0 then (if q = Xx then Xa else q) else (match q with Xb -> Xa | Xa -> Xx | Xx -> Xx)
  in
  WB.create ~base ~initiate ~respond ~response_count:2

let pp_config fmt c =
  Format.fprintf fmt "%a" (Config.pp pp_state) c

let () =
  let g = Graph.line [ 'b'; 'x'; 'x'; 'x'; 'b' ] in
  Format.printf "(a) native weak-broadcast run on the line b-x-x-x-b@.";
  let c0 = Config.initial example.WB.base g in
  Format.printf "    initial            %a@." pp_config c0;
  (* both ends broadcast simultaneously; nodes 1,2 receive node 0's signal,
     node 3 receives node 4's *)
  let choose ~node ~initiators:_ = if node <= 2 then 0 else 4 in
  let c1 = WB.step_broadcast ~choose example g c0 [ 0; 4 ] in
  Format.printf "    broadcast {0,4}    %a   (signals split 3/2)@." pp_config c1;
  let c2 = WB.step_broadcast ~choose:(fun ~node:_ ~initiators:_ -> 0) example g c1 [ 0 ] in
  Format.printf "    broadcast {0}      %a   (b ↦ b, {b↦a, a↦x})@." pp_config c2;
  let c3 = WB.step_neighbourhood example g c2 1 in
  let c3 = WB.step_neighbourhood example g c3 2 in
  Format.printf "    select 1, then 2   %a   (x ↦ a near an a)@." pp_config c3;

  Format.printf "@.(b) the Lemma 4.7 three-phase simulation, exclusive scheduling@.";
  let compiled = WB.compile example in
  let sched = Scheduler.round_robin ~n:5 in
  let steps, _final = Run.trace ~steps:30 compiled g sched in
  List.iteri
    (fun i (c, sel) ->
      Format.printf "    step %-3d select %a  %a@." i Scheduler.pp_selection sel
        (Config.pp (WB.pp_state pp_state)) c)
    steps;
  Format.printf
    "@.Intermediate states ⟨q|p1|fN⟩ / ⟨q|p2|fN⟩ carry the phase and the chosen@.\
     response function; a node advances a phase only when no neighbour lags@.\
     behind, so removing the intermediate snapshots yields a run of the@.\
     original weak-broadcast automaton (an 'extension' in the paper's sense).@."
