(** Automatic protocol synthesis: from a labelling predicate to an automaton
    of the weakest class this library can offer for it.

    The choice mirrors Figure 1, preferring weaker machinery:

    + predicates with syntactic cutoff 1 (boolean combinations of [x >= 1])
      → the Prop C.4 dAf-automaton: non-counting, correct under adversarial
      scheduling on every connected graph;
    + predicates with a syntactic cutoff K → the Prop C.6 dAF-automaton
      (weak-broadcast levels, compiled by Lemma 4.7): needs
      pseudo-stochastic fairness;
    + homogeneous thresholds with a known degree bound → the Section 6.1
      DAf-automaton: counting, correct under adversarial scheduling on
      graphs of bounded degree;
    + any other quantifier-free linear/modulo predicate (the semilinear
      fragment) → a population protocol built compositionally
      ({!Dda_protocols.Semilinear_pop}) and compiled to a DAF-automaton by
      Lemma 4.10: needs pseudo-stochastic fairness.

    Opaque predicates (primality, divisibility) are out of scope here — see
    {!Dda_protocols.Counter_broadcast} for their dedicated programs. *)

type packed = Packed : (string, 's) Dda_machine.Machine.t -> packed

type plan = {
  class_name : string;  (** e.g. "dAf", "dAF", "DAf (degree <= k)", "DAF". *)
  fairness : Classes.fairness;  (** The fairness the machine needs. *)
  description : string;
  machine : packed;
}

val synthesise :
  ?alphabet:string list ->
  ?degree_bound:int ->
  Dda_presburger.Predicate.t ->
  (plan, string) result
(** [alphabet] defaults to the predicate's variables (plus ["a"; "b"]);
    [degree_bound] enables the Section 6.1 route. *)

val decide_plan :
  ?budget:Decision.budget ->
  plan ->
  string Dda_graph.Graph.t ->
  Decision.outcome
(** Decide with the plan's machine under its required fairness. *)
