(** Graph population protocols (Definition B.19) and their simulation by
    DAF-automata (Lemma 4.10).

    A population protocol on graphs is a pair [(Q, δ)] with rendez-vous
    transitions [δ : Q² → Q²]: a scheduled ordered pair of {e adjacent}
    nodes [(u, v)] in states [(p, q)] moves to [δ(p, q)].  Schedules are
    pseudo-stochastic over ordered adjacent pairs.

    {!compile} is the Lemma 4.10 construction with counting bound β = 2: a
    node searches for a partner ([Search]), a neighbour that sees exactly one
    searcher answers ([Answer]), the searcher seeing exactly one answer
    confirms and pre-computes its post-state ([Confirm]), the answerer
    applies its state change, and finally the confirmer applies its saved
    state; any irregularity (more than one non-waiting neighbour) cancels the
    handshake back to the waiting status. *)

type ('l, 's) t = {
  init : 'l -> 's;
  delta : 's -> 's -> 's * 's;
      (** [delta p q = (p', q')] for the rendez-vous [p, q ↦ p', q']. *)
  accepting : 's -> bool;
  rejecting : 's -> bool;
  pp_state : Format.formatter -> 's -> unit;
}

val create :
  init:('l -> 's) ->
  delta:('s -> 's -> 's * 's) ->
  accepting:('s -> bool) ->
  rejecting:('s -> bool) ->
  ?pp_state:(Format.formatter -> 's -> unit) ->
  unit ->
  ('l, 's) t

(** {1 Direct semantics} *)

val initial : ('l, 's) t -> 'l Dda_graph.Graph.t -> 's Dda_runtime.Config.t

val step :
  ('l, 's) t -> 'l Dda_graph.Graph.t -> 's Dda_runtime.Config.t -> int * int ->
  's Dda_runtime.Config.t
(** Apply the rendez-vous for the ordered pair [(u, v)].
    @raise Invalid_argument if [u] and [v] are not adjacent. *)

val simulate_random :
  seed:int ->
  max_steps:int ->
  ('l, 's) t ->
  'l Dda_graph.Graph.t ->
  's Dda_runtime.Config.t * int
(** Uniformly random ordered adjacent pairs (a pseudo-stochastic sample). *)

val verdict :
  ('l, 's) t -> 's Dda_runtime.Config.t -> [ `Accepting | `Rejecting | `Mixed ]

val settle_time :
  seed:int -> max_steps:int -> ('l, 's) t -> 'l Dda_graph.Graph.t ->
  (int * [ `Accepting | `Rejecting ]) option
(** Run random ordered-pair selections for [max_steps] steps and report the
    last step at which the global verdict changed, with the final verdict —
    the convergence measure for protocols (like walking-token majority)
    whose configurations never freeze.  [None] if the final verdict is
    mixed. *)

val space :
  max_configs:int -> ('l, 's) t -> 'l Dda_graph.Graph.t -> Dda_verify.Space.t
(** Exact configuration space under all ordered-pair selections; [Counted]
    kind (population protocols are pseudo-stochastic, so bottom-SCC
    decisions apply). *)

(** {1 The Lemma 4.10 compilation} *)

type 's state =
  | Plain of 's  (** Waiting (the paper's ⌛). *)
  | Search of 's  (** Looking for a partner (🔍). *)
  | Answer of 's  (** Answering a unique searcher (💬). *)
  | Confirm of 's * 's
      (** Confirmed a unique answerer; second component is the post-state
          [δ₁(p, q)] to adopt once the partner has moved (✓). *)

val compile : ('l, 's) t -> ('l, 's state) Dda_machine.Machine.t
(** The DAF-automaton of Lemma 4.10 (counting bound 2). *)

val pp_state :
  (Format.formatter -> 's -> unit) -> Format.formatter -> 's state -> unit
