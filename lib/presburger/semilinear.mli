(** Semilinear sets of label counts.

    Angluin et al. proved that standard population protocols compute exactly
    the semilinear predicates; the paper cites this landscape throughout
    (Section 1, Related work).  We provide exact membership for semilinear
    sets over [nat^d], so tests can cross-check protocol semantics against
    semilinear specifications.

    A {e linear set} is [base + nat·p₁ + ... + nat·p_k] with base and periods
    in [nat^d]; a {e semilinear set} is a finite union of linear sets.
    Membership is decided exactly by depth-first search over residual
    vectors (all periods are non-negative, so coordinates only decrease). *)

type linear = { base : int array; periods : int array list }
type t = linear list
(** A union of linear sets, all of the same dimension. *)

val dimension : t -> int option
(** [None] for the empty union. *)

val linear_set : base:int array -> periods:int array list -> linear
(** @raise Invalid_argument on dimension mismatch or negative entries. *)

val of_linear : linear -> t
val union : t -> t -> t

val mem_linear : linear -> int array -> bool
val mem : t -> int array -> bool

val mem_counts : t -> alphabet:string list -> string Dda_multiset.Multiset.t -> bool
(** Membership of a label count, with coordinates in [alphabet] order. *)

val threshold_set : dim:int -> coord:int -> k:int -> t
(** [{ v | v.(coord) >= k }] as a semilinear set. *)

val mod_set : dim:int -> coord:int -> r:int -> m:int -> t
(** [{ v | v.(coord) ≡ r mod m }]. *)

val agrees_with :
  t -> alphabet:string list -> box:int -> Predicate.t -> bool
(** Check, exhaustively on the box, that the semilinear set and the predicate
    define the same labelling property. *)

val pp : Format.formatter -> t -> unit
