(* The batch subsystem: fingerprints, the on-disk verdict store, and the
   sharded runner.  The differential tests at the bottom are the
   acceptance criterion of the caching work: cached and fresh verdicts
   must be indistinguishable. *)

module G = Dda_graph.Graph
module Machine = Dda_machine.Machine
module Fp = Dda_batch.Fingerprint
module Store = Dda_batch.Store
module Spec = Dda_batch.Spec
module Batch = Dda_batch.Batch
module Decide = Dda_verify.Decide

let exists_a = Dda_protocols.Cutoff_one.exists_label ~alphabet:[ "a"; "b" ] "a"
let ab = [ "a"; "b" ]

let contains needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let replace_first ~needle ~by haystack =
  let n = String.length needle and h = String.length haystack in
  let rec find i = if i + n > h then None else if String.sub haystack i n = needle then Some i else find (i + 1) in
  match find 0 with
  | None -> haystack
  | Some i -> String.sub haystack 0 i ^ by ^ String.sub haystack (i + n) (h - i - n)

(* --- temp cache roots ------------------------------------------------------ *)

let dir_counter = ref 0

let fresh_root () =
  incr dir_counter;
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "dda_test_cache.%d.%d" (Unix.getpid ()) !dir_counter)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let with_store f =
  let root = fresh_root () in
  Fun.protect
    ~finally:(fun () -> rm_rf root)
    (fun () -> f (Store.open_ ~root ()))

(* --- fingerprints ---------------------------------------------------------- *)

let test_machine_fingerprint_stable () =
  let fp1 = Fp.machine ~labels:ab exists_a in
  let fp2 = Fp.machine ~labels:ab exists_a in
  Alcotest.(check string) "same machine, same fingerprint" fp1 fp2;
  Alcotest.(check bool) "small machine tabulates (not nominal)" true
    (String.length fp1 > 4 && String.sub fp1 0 4 = "tab:");
  (* behavioural: a renamed copy of the same machine fingerprints equally *)
  let renamed = Machine.rename "renamed-exists-a" exists_a in
  Alcotest.(check string) "name does not enter a tabulated fingerprint" fp1
    (Fp.machine ~labels:ab renamed)

let test_machine_fingerprint_distinguishes () =
  let fp = Fp.machine ~labels:ab exists_a in
  let threshold = Dda_protocols.Cutoff_broadcast.threshold ~alphabet:ab ~label:"a" ~k:2 in
  Alcotest.(check bool) "different behaviour, different fingerprint" true
    (fp <> Fp.machine ~labels:ab threshold);
  Alcotest.(check bool) "different alphabet, different fingerprint" true
    (fp <> Fp.machine ~labels:[ "a"; "b"; "c" ] exists_a)

let test_graph_fingerprint_isomorphism () =
  (* rotations and reflections of a labelled cycle are isomorphic *)
  let fp1 = Fp.graph (G.cycle [ "a"; "b"; "b"; "c" ]) in
  let fp2 = Fp.graph (G.cycle [ "b"; "b"; "c"; "a" ]) in
  let fp3 = Fp.graph (G.cycle [ "c"; "b"; "b"; "a" ]) in
  Alcotest.(check string) "rotation" fp1 fp2;
  Alcotest.(check string) "reflection" fp1 fp3;
  Alcotest.(check bool) "different multiset differs" true
    (fp1 <> Fp.graph (G.cycle [ "a"; "a"; "b"; "c" ]));
  Alcotest.(check bool) "topology differs" true
    (fp1 <> Fp.graph (G.line [ "a"; "b"; "b"; "c" ]))

let test_key_sensitivity () =
  let m = Fp.machine ~labels:ab exists_a in
  let g = Fp.graph (G.cycle [ "a"; "b"; "b" ]) in
  let key = Fp.key ~machine:m ~graph:g ~regime:"F" ~max_configs:1000 () in
  Alcotest.(check string) "deterministic" key
    (Fp.key ~machine:m ~graph:g ~regime:"F" ~max_configs:1000 ());
  Alcotest.(check bool) "regime enters the key" true
    (key <> Fp.key ~machine:m ~graph:g ~regime:"f" ~max_configs:1000 ());
  Alcotest.(check bool) "budget enters the key" true
    (key <> Fp.key ~machine:m ~graph:g ~regime:"F" ~max_configs:1001 ());
  Alcotest.(check bool) "machine enters the key" true
    (key <> Fp.key ~machine:(m ^ "x") ~graph:g ~regime:"F" ~max_configs:1000 ())

(* --- the store ------------------------------------------------------------- *)

let entry ?(verdict = Store.Accepts) key =
  {
    Store.key;
    machine = "tab:m";
    graph = "can:g";
    regime = "F";
    max_configs = 1000;
    verdict;
    configs = 42;
    seconds = 0.5;
    engine = "explicit";
    family = None;
  }

let some_key = String.make 32 'a'

let test_store_roundtrip () =
  with_store (fun store ->
      List.iteri
        (fun i verdict ->
          let key = String.make 32 (Char.chr (Char.code 'a' + i)) in
          Store.put store (entry ~verdict key);
          match Store.find store key with
          | None -> Alcotest.fail "entry not found after put"
          | Some e ->
            Alcotest.(check bool) "verdict survives the round-trip" true
              (e.Store.verdict = verdict);
            Alcotest.(check int) "configs survive" 42 e.Store.configs)
        [ Store.Accepts; Store.Rejects; Store.Inconsistent "w: 0 1"; Store.Bounded 7 ];
      let s = Store.stats store in
      Alcotest.(check int) "four entries on disk" 4 s.Store.entries;
      Alcotest.(check int) "none corrupt" 0 s.Store.corrupt)

let test_store_missing_and_invalid () =
  with_store (fun store ->
      Alcotest.(check bool) "absent key is a miss" true
        (Store.find store some_key = None);
      Alcotest.(check bool) "invalid key is a miss, not a crash" true
        (Store.find store "../../etc/passwd" = None))

let corrupt_path store key =
  (* mirror the store layout: <root>/<2 hex>/<key>.json *)
  Filename.concat
    (Filename.concat (Store.root store) (String.sub key 0 2))
    (key ^ ".json")

let test_store_corrupt_entry () =
  with_store (fun store ->
      Store.put store (entry some_key);
      Alcotest.(check bool) "entry present" true (Store.find store some_key <> None);
      Out_channel.with_open_bin (corrupt_path store some_key) (fun oc ->
          Out_channel.output_string oc "garbage{{");
      Alcotest.(check bool) "corrupt entry reads as a miss" true
        (Store.find store some_key = None);
      Alcotest.(check int) "verify flags it" 1 (List.length (Store.verify store));
      Alcotest.(check int) "gc removes it" 1 (Store.gc store);
      Alcotest.(check int) "store clean after gc" 0 (List.length (Store.verify store));
      (* truncated file: cut a valid entry in half *)
      Store.put store (entry some_key);
      let path = corrupt_path store some_key in
      let contents = In_channel.with_open_bin path In_channel.input_all in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc (String.sub contents 0 (String.length contents / 2)));
      Alcotest.(check bool) "truncated entry reads as a miss" true
        (Store.find store some_key = None))

let test_store_stale_salt () =
  with_store (fun store ->
      Store.put store (entry some_key);
      let path = corrupt_path store some_key in
      let contents = In_channel.with_open_bin path In_channel.input_all in
      let doctored = replace_first ~needle:Fp.version_salt ~by:"dda-engine/0" contents in
      Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc doctored);
      Alcotest.(check bool) "foreign-salt entry reads as a miss" true
        (Store.find store some_key = None);
      let s = Store.stats store in
      Alcotest.(check int) "counted as stale, not corrupt" 1 s.Store.stale;
      Alcotest.(check int) "gc removes stale entries" 1 (Store.gc store))

(* --- the in-memory LRU tier ------------------------------------------------- *)

module Lru = Dda_batch.Lru

let test_lru_eviction_order () =
  (* one shard: the global recency order is deterministic *)
  let l = Lru.create ~shards:1 ~capacity:3 () in
  ignore (Lru.put l "a" 1);
  ignore (Lru.put l "b" 2);
  ignore (Lru.put l "c" 3);
  (match Lru.find l "a" with
  | `Hit 1 -> () (* refreshes recency: "b" is now least recent *)
  | _ -> Alcotest.fail "a should hit");
  Alcotest.(check int) "insert at capacity evicts one" 1 (Lru.put l "d" 4);
  (match Lru.find l "b" with
  | `Miss -> ()
  | _ -> Alcotest.fail "the least-recently-used entry (b) must be the one evicted");
  List.iter
    (fun (k, v) ->
      match Lru.find l k with
      | `Hit v' when v' = v -> ()
      | _ -> Alcotest.failf "%s should survive the eviction" k)
    [ ("a", 1); ("c", 3); ("d", 4) ];
  Alcotest.(check int) "overwrite evicts nothing" 0 (Lru.put l "a" 10);
  (match Lru.find l "a" with `Hit 10 -> () | _ -> Alcotest.fail "overwrite visible");
  let s = Lru.stats l in
  Alcotest.(check int) "size at capacity" 3 s.Lru.size;
  Alcotest.(check int) "capacity" 3 s.Lru.capacity;
  Alcotest.(check int) "one eviction counted" 1 s.Lru.evictions;
  Lru.remove l "a";
  (match Lru.find l "a" with `Miss -> () | _ -> Alcotest.fail "remove removes");
  Lru.flush l;
  Alcotest.(check int) "flush empties" 0 (Lru.stats l).Lru.size

let test_lru_sharding_bound () =
  let l = Lru.create ~shards:4 ~capacity:8 () in
  for i = 0 to 99 do
    ignore (Lru.put l (Printf.sprintf "key-%d" i) i)
  done;
  let s = Lru.stats l in
  Alcotest.(check int) "capacity is the per-shard split summed" 8 s.Lru.capacity;
  Alcotest.(check bool) "size bounded by capacity" true (s.Lru.size <= s.Lru.capacity);
  Alcotest.(check int) "evictions account for the overflow" (100 - s.Lru.size)
    s.Lru.evictions

let test_lru_negative_ttl () =
  let now = 1000. in
  let l = Lru.create ~shards:1 ~negative_ttl:5. ~capacity:8 () in
  Lru.note_absent ~now l "k";
  (match Lru.find ~now:(now +. 4.9) l "k" with
  | `Negative -> ()
  | _ -> Alcotest.fail "tombstone live within the TTL");
  (match Lru.find ~now:(now +. 5.1) l "k" with
  | `Miss -> ()
  | _ -> Alcotest.fail "tombstone expires after the TTL");
  (* a tombstone never shadows a live value *)
  ignore (Lru.put l "v" 7);
  Lru.note_absent ~now l "v";
  (match Lru.find ~now l "v" with
  | `Hit 7 -> ()
  | _ -> Alcotest.fail "note_absent must not clobber a live entry");
  (* a local put supersedes the tombstone immediately, no TTL wait *)
  Lru.note_absent ~now l "w";
  ignore (Lru.put l "w" 9);
  (match Lru.find ~now l "w" with
  | `Hit 9 -> ()
  | _ -> Alcotest.fail "put supersedes the tombstone");
  (* ttl <= 0 disables negative caching entirely *)
  let l0 = Lru.create ~shards:1 ~negative_ttl:0. ~capacity:2 () in
  Lru.note_absent ~now l0 "x";
  match Lru.find ~now l0 "x" with
  | `Miss -> ()
  | _ -> Alcotest.fail "negative caching disabled at ttl 0"

let test_lru_negative_monotonic_clock () =
  (* regression: the default expiry clock must be the monotonic clock, not
     wall time.  A tombstone noted with the default clock must expire when
     probed at [monotonic + ttl + eps] — under the old gettimeofday default
     the expiry sat ~50 years past any monotonic instant (uptime-based),
     so tombstones never aged out against an injected monotonic [~now]
     (and a wall-clock step could pin or instantly expire them). *)
  let mono = Dda_telemetry.Telemetry.monotonic in
  let l = Lru.create ~shards:1 ~negative_ttl:5. ~capacity:8 () in
  Lru.note_absent l "k";
  (match Lru.find ~now:(mono () +. 1.) l "k" with
  | `Negative -> ()
  | _ -> Alcotest.fail "tombstone live within the TTL on the monotonic clock");
  (match Lru.find ~now:(mono () +. 6.) l "k" with
  | `Miss -> ()
  | _ -> Alcotest.fail "tombstone must expire against the monotonic clock");
  (* and the default-clock probe agrees with the default-clock note *)
  Lru.note_absent l "j";
  match Lru.find l "j" with
  | `Negative -> ()
  | _ -> Alcotest.fail "fresh tombstone visible on the default clock"

let test_lru_concurrent_readers () =
  (* readers and writers hammering all shards while evictions churn: the
     invariants are "never crashes" and "stays within the bound" *)
  let l = Lru.create ~shards:4 ~capacity:64 () in
  let threads =
    List.init 8 (fun t ->
        Thread.create
          (fun () ->
            for i = 0 to 9_999 do
              let k = Printf.sprintf "k%d" ((i * (t + 1)) mod 256) in
              match Lru.find l k with
              | `Hit _ | `Negative -> ()
              | `Miss -> ignore (Lru.put l k i)
            done)
          ())
  in
  List.iter Thread.join threads;
  let s = Lru.stats l in
  Alcotest.(check bool) "bound holds under concurrency" true (s.Lru.size <= s.Lru.capacity);
  Alcotest.(check bool) "traffic happened" true (s.Lru.hits + s.Lru.misses > 0)

(* --- the store's memo tier --------------------------------------------------- *)

let with_memo_store ?negative_ttl f =
  let root = fresh_root () in
  Fun.protect
    ~finally:(fun () -> rm_rf root)
    (fun () -> f root (Store.open_ ~root ~memo:64 ?negative_ttl ()))

let test_memo_serves_from_ram () =
  with_memo_store (fun _root store ->
      Store.put store (entry some_key);
      (* delete the backing file: a hit now can only come from the memo —
         this is the single-decode regression test (no re-read, no
         re-parse on the warm path) *)
      Sys.remove (corrupt_path store some_key);
      (match Store.find store some_key with
      | Some e -> Alcotest.(check int) "decoded entry intact" 42 e.Store.configs
      | None -> Alcotest.fail "warm hit must be served from RAM");
      match Store.memo_stats store with
      | Some s -> Alcotest.(check bool) "memo hit counted" true (s.Lru.hits >= 1)
      | None -> Alcotest.fail "memo_stats present when the tier is on")

let test_memo_negative_entries () =
  with_memo_store ~negative_ttl:0.05 (fun root store ->
      Alcotest.(check bool) "cold miss" true (Store.find store some_key = None);
      (* a write by another process is invisible while the tombstone lives,
         and visible after at most the TTL *)
      let other = Store.open_ ~root () in
      Store.put other (entry some_key);
      Unix.sleepf 0.1;
      (match Store.find store some_key with
      | Some _ -> ()
      | None -> Alcotest.fail "foreign write visible after the negative TTL");
      (* a local put supersedes its own tombstone immediately *)
      let k2 = String.make 32 'b' in
      Alcotest.(check bool) "k2 misses" true (Store.find store k2 = None);
      Store.put store (entry k2);
      Alcotest.(check bool) "local put visible immediately" true
        (Store.find store k2 <> None))

let test_memo_gc_flushes () =
  with_memo_store (fun _root store ->
      Store.put store (entry some_key);
      Alcotest.(check bool) "warm" true (Store.find store some_key <> None);
      ignore (Store.gc store);
      Sys.remove (corrupt_path store some_key);
      Alcotest.(check bool) "gc flushed the memo: the key is gone for real" true
        (Store.find store some_key = None))

let test_memo_lock_flushes () =
  with_memo_store (fun _root store ->
      Store.put store (entry some_key);
      Alcotest.(check bool) "warm" true (Store.find store some_key <> None);
      match Store.lock store ~mode:`Shared with
      | Error e -> Alcotest.failf "shared lock: %s" e
      | Ok l ->
        Fun.protect
          ~finally:(fun () -> Store.unlock l)
          (fun () ->
            Sys.remove (corrupt_path store some_key);
            Alcotest.(check bool)
              "lock acquisition flushed the memo (another process may have gc'd)" true
              (Store.find store some_key = None)))

(* --- cached decisions ------------------------------------------------------ *)

let decision_result (d : Batch.decision) = d.Batch.result

let check_result msg a b =
  Alcotest.(check bool) msg true
    (match (a, b) with
    | Batch.Verdict va, Batch.Verdict vb -> va = vb
    | Batch.Bounded na, Batch.Bounded nb -> na = nb
    | _ -> false)

let test_decide_cached_matches_fresh () =
  with_store (fun store ->
      let g = G.cycle [ "a"; "b"; "b" ] in
      let fresh =
        Batch.decide ~regime:Spec.Pseudo_stochastic ~max_configs:10_000 exists_a g
      in
      let cold =
        Batch.decide ~cache:store ~regime:Spec.Pseudo_stochastic ~max_configs:10_000 exists_a g
      in
      let warm =
        Batch.decide ~cache:store ~regime:Spec.Pseudo_stochastic ~max_configs:10_000 exists_a g
      in
      check_result "cold run matches the uncached verdict" (decision_result fresh)
        (decision_result cold);
      check_result "warm run matches too" (decision_result fresh) (decision_result warm);
      Alcotest.(check bool) "cold was computed" false cold.Batch.cached;
      Alcotest.(check bool) "warm was a hit" true warm.Batch.cached;
      Alcotest.(check int) "hit reports the original configs" cold.Batch.configs
        warm.Batch.configs)

let test_decide_cached_recovers_from_corruption () =
  with_store (fun store ->
      let g = G.cycle [ "a"; "b"; "b" ] in
      let regime = Spec.Pseudo_stochastic and max_configs = 10_000 in
      let cold = Batch.decide ~cache:store ~regime ~max_configs exists_a g in
      let key =
        Fp.key
          ~machine:(Fp.machine ~labels:ab exists_a)
          ~graph:(Fp.graph g) ~regime:(Spec.regime_name regime) ~max_configs ()
      in
      Out_channel.with_open_bin (corrupt_path store key) (fun oc ->
          Out_channel.output_string oc "]]not json");
      let recomputed = Batch.decide ~cache:store ~regime ~max_configs exists_a g in
      Alcotest.(check bool) "corrupt entry forces a recompute" false
        recomputed.Batch.cached;
      check_result "recomputed verdict matches" (decision_result cold)
        (decision_result recomputed);
      let warm = Batch.decide ~cache:store ~regime ~max_configs exists_a g in
      Alcotest.(check bool) "recompute repaired the entry" true warm.Batch.cached)

let test_bounded_is_cached () =
  with_store (fun store ->
      let g = G.cycle [ "a"; "b"; "b" ] in
      let regime = Spec.Pseudo_stochastic and max_configs = 2 in
      let cold = Batch.decide ~cache:store ~regime ~max_configs exists_a g in
      (match cold.Batch.result with
      | Batch.Bounded n -> Alcotest.(check bool) "bound payload positive" true (n >= 2)
      | Batch.Verdict _ -> Alcotest.fail "budget of 2 should bound out");
      let warm = Batch.decide ~cache:store ~regime ~max_configs exists_a g in
      Alcotest.(check bool) "bounded-out results are cached too" true warm.Batch.cached;
      check_result "same bound" (decision_result cold) (decision_result warm))

(* --- manifests and the runner ---------------------------------------------- *)

let manifest =
  {|{"schema": "dda.batch-manifest/1",
     "jobs": [
       {"protocol": "exists:a", "graph": "cycle:abb"},
       {"protocol": "exists:a", "graph": "cycle:bab", "regime": "f"},
       {"protocol": "threshold:a,2", "graph": "clique:aab", "regime": "F", "max_configs": 5000}
     ]}|}

let test_manifest_parse () =
  match Batch.manifest_of_string ~default_max_configs:777 manifest with
  | Error e -> Alcotest.fail e
  | Ok jobs ->
    Alcotest.(check int) "three jobs" 3 (List.length jobs);
    let j0 = List.nth jobs 0 and j1 = List.nth jobs 1 and j2 = List.nth jobs 2 in
    Alcotest.(check string) "protocol" "exists:a" j0.Batch.protocol;
    Alcotest.(check bool) "regime defaults to F" true
      (j0.Batch.regime = Spec.Pseudo_stochastic);
    Alcotest.(check int) "max_configs defaults" 777 j0.Batch.max_configs;
    Alcotest.(check bool) "explicit regime" true (j1.Batch.regime = Spec.Adversarial);
    Alcotest.(check int) "explicit max_configs" 5000 j2.Batch.max_configs

let test_manifest_rejects () =
  let bad schema = Printf.sprintf {|{"schema": %S, "jobs": []}|} schema in
  Alcotest.(check bool) "wrong schema rejected" true
    (Result.is_error (Batch.manifest_of_string (bad "dda.batch-manifest/9")));
  Alcotest.(check bool) "missing jobs rejected" true
    (Result.is_error (Batch.manifest_of_string {|{"schema": "dda.batch-manifest/1"}|}));
  Alcotest.(check bool) "bad job rejected" true
    (Result.is_error
       (Batch.manifest_of_string
          {|{"schema": "dda.batch-manifest/1", "jobs": [{"graph": "cycle:abb"}]}|}))

let run_jobs =
  match Batch.manifest_of_string ~default_max_configs:10_000 manifest with
  | Ok jobs -> jobs
  | Error e -> failwith e

let count_outcomes report =
  List.fold_left
    (fun (done_, cached, failed) (_, outcome, _) ->
      match outcome with
      | Batch.Done d -> (done_ + 1, (if d.Batch.cached then cached + 1 else cached), failed)
      | Batch.Failed _ -> (done_, cached, failed + 1)
      | Batch.Skipped | Batch.Interrupted -> (done_, cached, failed))
    (0, 0, 0) report.Batch.jobs

let test_run_cold_then_warm () =
  with_store (fun store ->
      Batch.reset_cache_stats ();
      let cold = Batch.run ~cache:store ~shards:2 run_jobs in
      let d, c, f = count_outcomes cold in
      Alcotest.(check int) "all jobs decided" 3 d;
      Alcotest.(check int) "no hits cold" 0 c;
      Alcotest.(check int) "no failures" 0 f;
      Alcotest.(check int) "report misses" 3 cold.Batch.misses;
      let warm = Batch.run ~cache:store ~shards:2 run_jobs in
      let d', c', _ = count_outcomes warm in
      Alcotest.(check int) "all jobs decided warm" 3 d';
      Alcotest.(check int) "all hits warm" 3 c';
      Alcotest.(check int) "report hits" 3 warm.Batch.hits;
      Alcotest.(check int) "no misses warm" 0 warm.Batch.misses;
      (* verdicts byte-identical across the runs *)
      List.iter2
        (fun (_, o1, _) (_, o2, _) ->
          match (o1, o2) with
          | Batch.Done d1, Batch.Done d2 ->
            check_result "cold and warm verdicts agree" (decision_result d1)
              (decision_result d2)
          | _ -> Alcotest.fail "outcome shape changed between runs")
        cold.Batch.jobs warm.Batch.jobs;
      let hits, misses = Batch.cache_stats () in
      Alcotest.(check int) "global hit tally" 3 hits;
      Alcotest.(check int) "global miss tally" 3 misses)

let test_run_reports_failures () =
  let jobs =
    { Batch.protocol = "exists:z"; graph = "cycle:abb"; regime = Spec.Pseudo_stochastic;
      max_configs = 1000 }
    :: run_jobs
  in
  let report = Batch.run jobs in
  (match report.Batch.jobs with
  | (_, Batch.Failed msg, shard) :: _ ->
    Alcotest.(check bool) "failure names the label" true
      (contains "outside the alphabet" msg || contains "unknown" msg);
    Alcotest.(check int) "failed at resolve: no shard" (-1) shard
  | _ -> Alcotest.fail "first job should fail to resolve");
  let json = Batch.report_json report in
  Alcotest.(check bool) "report JSON parses" true
    (Result.is_ok (Dda_telemetry.Json.parse json))

(* --- interruption ----------------------------------------------------------- *)

let test_run_interrupted () =
  with_store (fun store ->
      (* trip the flag after the first job: the rest drain as Interrupted,
         the report still carries the completed verdict *)
      let seen = ref 0 in
      let interrupted () =
        incr seen;
        !seen > 1
      in
      let report = Batch.run ~cache:store ~interrupted run_jobs in
      let done_, _, _ = count_outcomes report in
      let interrupted_jobs =
        List.length
          (List.filter (fun (_, o, _) -> o = Batch.Interrupted) report.Batch.jobs)
      in
      Alcotest.(check int) "first job completed" 1 done_;
      Alcotest.(check int) "remaining jobs interrupted" 2 interrupted_jobs;
      let json = Batch.report_json report in
      Alcotest.(check bool) "interrupted status in the report" true
        (contains "\"status\": \"interrupted\"" json);
      Alcotest.(check bool) "report still parses" true
        (Result.is_ok (Dda_telemetry.Json.parse json)))

(* --- advisory locking -------------------------------------------------------- *)

let test_store_lock () =
  with_store (fun store ->
      (* uncontended: both modes acquire and release *)
      (match Store.lock store ~mode:`Shared with
      | Ok l -> Store.unlock l
      | Error e -> Alcotest.failf "shared lock: %s" e);
      (match Store.lock store ~mode:`Exclusive with
      | Ok l -> Store.unlock l
      | Error e -> Alcotest.failf "exclusive lock: %s" e);
      (* POSIX record locks only conflict across processes, so the
         contention paths need a child *)
      let r, w = Unix.pipe () in
      match Unix.fork () with
      | 0 ->
        (* child: hold a shared lock until killed; _exit skips alcotest *)
        Unix.close r;
        let code =
          match Store.lock store ~mode:`Shared with
          | Ok _ ->
            ignore (Unix.write w (Bytes.make 1 'k') 0 1);
            Unix.sleepf 30.;
            0
          | Error _ -> 1
        in
        Unix._exit code
      | pid ->
        Unix.close w;
        let buf = Bytes.create 1 in
        ignore (Unix.read r buf 0 1);
        Unix.close r;
        (match Store.lock store ~mode:`Exclusive with
        | Ok _ -> Alcotest.fail "exclusive acquired while a shared holder is alive"
        | Error msg ->
          Alcotest.(check bool) "contention message names the usage" true
            (contains "in use" msg));
        Unix.kill pid Sys.sigkill;
        ignore (Unix.waitpid [] pid);
        (* the crashed holder left a stale file; the next exclusive reaps it *)
        (match Store.lock store ~mode:`Exclusive with
        | Ok l -> Store.unlock l
        | Error e -> Alcotest.failf "stale holder not reaped: %s" e))

(* --- differential: Figure 1 through the cache ------------------------------ *)

let test_figure1_differential () =
  with_store (fun store ->
      let fresh = Dda_core.Figure1.arbitrary_table ~max_nodes:3 () in
      Batch.reset_cache_stats ();
      let cold = Dda_core.Figure1.arbitrary_table ~cache:store ~max_nodes:3 () in
      let _, cold_misses = Batch.cache_stats () in
      Batch.reset_cache_stats ();
      let warm = Dda_core.Figure1.arbitrary_table ~cache:store ~max_nodes:3 () in
      let warm_hits, warm_misses = Batch.cache_stats () in
      Alcotest.(check bool) "cached table equals the fresh table" true (cold = fresh);
      Alcotest.(check bool) "warm table equals too" true (warm = fresh);
      Alcotest.(check bool) "cold run populated the cache" true (cold_misses > 0);
      Alcotest.(check int) "warm run is pure hits" 0 warm_misses;
      Alcotest.(check bool) "warm run did hit" true (warm_hits > 0))

let () =
  Alcotest.run "batch"
    [
      (* first: Unix.fork is illegal once any test has spawned a domain
         (the sharded runner does), so the cross-process lock test leads *)
      ( "lock",
        [ Alcotest.test_case "shared vs exclusive across processes" `Quick test_store_lock ] );
      ( "fingerprint",
        [
          Alcotest.test_case "machine stable" `Quick test_machine_fingerprint_stable;
          Alcotest.test_case "machine distinguishes" `Quick test_machine_fingerprint_distinguishes;
          Alcotest.test_case "graph isomorphism" `Quick test_graph_fingerprint_isomorphism;
          Alcotest.test_case "key sensitivity" `Quick test_key_sensitivity;
        ] );
      ( "store",
        [
          Alcotest.test_case "round-trip" `Quick test_store_roundtrip;
          Alcotest.test_case "missing and invalid keys" `Quick test_store_missing_and_invalid;
          Alcotest.test_case "corrupt entries" `Quick test_store_corrupt_entry;
          Alcotest.test_case "stale salt" `Quick test_store_stale_salt;
        ] );
      ( "lru",
        [
          Alcotest.test_case "capacity and eviction order" `Quick test_lru_eviction_order;
          Alcotest.test_case "sharding bound" `Quick test_lru_sharding_bound;
          Alcotest.test_case "negative TTL" `Quick test_lru_negative_ttl;
          Alcotest.test_case "negative TTL on the monotonic clock" `Quick
            test_lru_negative_monotonic_clock;
          Alcotest.test_case "concurrent readers during eviction" `Quick
            test_lru_concurrent_readers;
        ] );
      ( "memo",
        [
          Alcotest.test_case "warm hit served from RAM" `Quick test_memo_serves_from_ram;
          Alcotest.test_case "negative entries" `Quick test_memo_negative_entries;
          Alcotest.test_case "gc flushes the memo" `Quick test_memo_gc_flushes;
          Alcotest.test_case "lock acquisition flushes the memo" `Quick
            test_memo_lock_flushes;
        ] );
      ( "decide",
        [
          Alcotest.test_case "cached matches fresh" `Quick test_decide_cached_matches_fresh;
          Alcotest.test_case "recovers from corruption" `Quick
            test_decide_cached_recovers_from_corruption;
          Alcotest.test_case "bounded results cached" `Quick test_bounded_is_cached;
        ] );
      ( "runner",
        [
          Alcotest.test_case "manifest parse" `Quick test_manifest_parse;
          Alcotest.test_case "manifest rejects" `Quick test_manifest_rejects;
          Alcotest.test_case "cold then warm" `Quick test_run_cold_then_warm;
          Alcotest.test_case "reports failures" `Quick test_run_reports_failures;
          Alcotest.test_case "interrupt drains cleanly" `Quick test_run_interrupted;
        ] );
      ( "differential",
        [ Alcotest.test_case "figure 1 through the cache" `Slow test_figure1_differential ] );
    ]
