(** Node-permutation groups for symmetry reduction.

    The packed engine ({!Engine}) can quotient a configuration space by a
    group of automorphisms of the communication graph: configurations in the
    same orbit are merged by storing only the lexicographically least packed
    representative.  This module builds and validates the groups.

    Soundness needs only that every permutation preserves {e adjacency} of
    the communication graph (label preservation is not required — exploring
    from the canonical image of the initial configuration explores an
    isomorphic copy, and verdicts are invariant under isomorphism); the
    automorphism property is certified per family by qcheck tests against
    {!Dda_graph.Graph.is_automorphism}.

    A permutation [p] maps node [v] to [p.(v)] and acts on configurations by
    [(p . c).(v) = c.(p.(v))]. *)

type t
(** A full finite permutation group: closed under composition, identity at
    index 0, with a precomputed multiplication table. *)

val of_generators : degree:int -> int array list -> t
(** Closure of the generators.
    @raise Invalid_argument if a generator is not a permutation of
    [0..degree-1] or the closure exceeds [8!] elements. *)

val trivial : int -> t
(** The one-element group (no reduction). *)

val line : int -> t
(** Reflection symmetry of the [n]-node line: order 2. *)

val cycle : int -> t
(** Dihedral symmetry of the [n]-node cycle (rotations and reflections):
    order [2n].  Requires [n >= 3]. *)

val star : centre:int -> int -> t
(** All permutations of the [n - 1] leaves of an [n]-node star whose centre
    is node [centre]: order [(n-1)!].  Keep [n] small.
    @raise Invalid_argument if the order would exceed [8!]. *)

val clique : int -> t
(** The full symmetric group on [n] nodes: order [n!].  Keep [n] small.
    @raise Invalid_argument if the order would exceed [8!]. *)

val order : t -> int
val is_trivial : t -> bool
val degree : t -> int

val perms : t -> int array array
(** The group elements; index 0 is the identity.  Do not mutate. *)

val mul : t -> int array array
(** [​(mul g).(i).(j)] is the index of [fun v -> p_i.(p_j.(v))] — the
    element whose action on configurations equals acting by [p_j] then by
    [p_i] under the convention above. *)

val pp : Format.formatter -> t -> unit
