(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic component of the library (random graphs, pseudo-stochastic
    schedule sampling, qcheck-independent fuzzing) draws from this generator so
    that experiments are reproducible from a single integer seed.  The
    generator is the splitmix64 construction of Steele, Lea and Flood; it has a
    64-bit state, passes BigCrush, and supports O(1) splitting, which we use to
    derive independent streams for independent components. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] is an independent generator that will produce the same stream as
    [t] from this point on. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  @raise Invalid_argument if
    [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] (inclusive).
    @raise Invalid_argument if [hi < lo]. *)

val bool : t -> bool
(** Fair coin. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val pick : t -> 'a list -> 'a
(** Uniform element of a non-empty list.  @raise Invalid_argument on []. *)

val pick_arr : t -> 'a array -> 'a
(** Uniform element of a non-empty array. @raise Invalid_argument on [||]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val shuffle_list : t -> 'a list -> 'a list
(** Functional shuffle. *)

val sample_without_replacement : t -> int -> int -> int list
(** [sample_without_replacement t k n] draws [k] distinct integers from
    [\[0, n)], in random order.  @raise Invalid_argument if [k > n] or
    [k < 0]. *)
