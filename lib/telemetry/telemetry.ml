(* Telemetry implementation.  Hot-path discipline: every operation that can
   run inside the exploration or simulation loops tests [st.on] (one load +
   one branch) and, when disabled, returns without allocating — the
   allocation-freedom is asserted by test/test_telemetry.ml via
   [Gc.minor_words].  Everything behind the branch may allocate freely. *)

external monotonic_raw : unit -> (float[@unboxed])
  = "dda_monotonic_seconds" "dda_monotonic_seconds_unboxed"
[@@noalloc]

(* One probe at load time decides the clock for the whole process: a
   negative value from the stub means CLOCK_MONOTONIC is unavailable. *)
let monotonic_available = monotonic_raw () >= 0.

let monotonic : unit -> float =
  if monotonic_available then monotonic_raw else Unix.gettimeofday

(* All internal timestamps (journal "t", trace "ts", span durations,
   progress rates) are differences against [st.t0], so the monotonic clock's
   arbitrary origin is fine — and NTP steps can no longer skew them.
   Absolute wall-clock time is only for externally-meaningful instants
   (deadlines, access-log timestamps); callers use [Unix.gettimeofday]. *)
let now = monotonic

type counter = { cname : string; mutable count : int }

type histogram = {
  hname : string;
  buckets : int array;  (* 65 power-of-two buckets; index 0 = v <= 0 *)
  mutable n : int;
  mutable sum : int;
  mutable lo : int;
  mutable hi : int;
}

type span_agg = { mutable calls : int; mutable total : float }

type state = {
  mutable on : bool;  (* write-once, in [enable] *)
  mutable progress : bool;
  mutable trace : out_channel option;
  mutable trace_events : int;
  mutable journal_oc : out_channel option;
  mutable t0 : float;
  mutable depth : int;
  mutable last_progress : float;
  mutable progress_live : bool;
  emit_lock : Mutex.t;
}

let st =
  {
    on = false;
    progress = false;
    trace = None;
    trace_events = 0;
    journal_oc = None;
    t0 = 0.;
    depth = 0;
    last_progress = 0.;
    progress_live = false;
    emit_lock = Mutex.create ();
  }

let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16
let span_aggs : (string, span_agg) Hashtbl.t = Hashtbl.create 16

(* Find-or-create may be reached from worker domains (the engine's
   per-domain counters, any instrumented code called by the batch runner's
   shards), so the tables are guarded by the emit lock.  Counter bumps stay
   unguarded single-word writes — the hot path must remain a load+branch —
   and exact cross-domain accounting is the caller's job (the engine and the
   batch driver aggregate per-worker tallies on the main domain). *)
let counter name =
  Mutex.lock st.emit_lock;
  let c =
    match Hashtbl.find_opt counters name with
    | Some c -> c
    | None ->
      let c = { cname = name; count = 0 } in
      Hashtbl.add counters name c;
      c
  in
  Mutex.unlock st.emit_lock;
  c

let histogram name =
  Mutex.lock st.emit_lock;
  let h =
    match Hashtbl.find_opt histograms name with
    | Some h -> h
    | None ->
      let h = { hname = name; buckets = Array.make 65 0; n = 0; sum = 0; lo = max_int; hi = min_int } in
      Hashtbl.add histograms name h;
      h
  in
  Mutex.unlock st.emit_lock;
  h

let enabled () = st.on
let journalling () = st.on && st.journal_oc <> None

(* ------------------------------------------------------------------ *)
(* Hot-path operations                                                  *)
(* ------------------------------------------------------------------ *)

let incr c = if st.on then c.count <- c.count + 1
let add c n = if st.on then c.count <- c.count + n
let max_gauge c n = if st.on then if n > c.count then c.count <- n
let value c = c.count

let bucket_of v =
  if v <= 0 then 0
  else begin
    let k = ref 0 and x = ref v in
    while !x > 0 do
      Stdlib.incr k;
      x := !x lsr 1
    done;
    !k
  end

let observe h v =
  if st.on then begin
    let b = bucket_of v in
    h.buckets.(b) <- h.buckets.(b) + 1;
    h.n <- h.n + 1;
    h.sum <- h.sum + v;
    if v < h.lo then h.lo <- v;
    if v > h.hi then h.hi <- v
  end

(* ------------------------------------------------------------------ *)
(* Sinks                                                                *)
(* ------------------------------------------------------------------ *)

type arg = I of int | F of float | S of string | A of int list

let arg_json b = function
  | I v -> Buffer.add_string b (string_of_int v)
  | F v -> Buffer.add_string b (Printf.sprintf "%.6g" v)
  | S s ->
    Buffer.add_char b '"';
    Buffer.add_string b (Json.escape s);
    Buffer.add_char b '"'
  | A l ->
    Buffer.add_char b '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (string_of_int v))
      l;
    Buffer.add_char b ']'

let fields_json b fields =
  List.iter
    (fun (k, v) ->
      Buffer.add_string b ",\"";
      Buffer.add_string b (Json.escape k);
      Buffer.add_string b "\":";
      arg_json b v)
    fields

(* One Chrome trace_event object.  [ts]/[dur] are microseconds relative to
   [enable]; everything runs on one logical track (pid/tid 0), so span
   hierarchy is time containment. *)
let write_trace_event ~name ~ph ~ts ?dur args =
  match st.trace with
  | None -> ()
  | Some oc ->
    let b = Buffer.create 128 in
    Buffer.add_string b (if st.trace_events > 0 then ",\n" else "");
    Buffer.add_string b
      (Printf.sprintf "{\"name\":\"%s\",\"cat\":\"dda\",\"ph\":\"%s\",\"ts\":%.1f,\"pid\":0,\"tid\":0"
         (Json.escape name) ph ts);
    (match dur with Some d -> Buffer.add_string b (Printf.sprintf ",\"dur\":%.1f" d) | None -> ());
    (match ph with "i" -> Buffer.add_string b ",\"s\":\"t\"" | _ -> ());
    if args <> [] then begin
      Buffer.add_string b ",\"args\":{";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b (Printf.sprintf "\"%s\":" (Json.escape k));
          arg_json b v)
        args;
      Buffer.add_char b '}'
    end;
    Buffer.add_char b '}';
    Mutex.lock st.emit_lock;
    st.trace_events <- st.trace_events + 1;
    output_string oc (Buffer.contents b);
    Mutex.unlock st.emit_lock

let write_journal_line ev fields =
  match st.journal_oc with
  | None -> ()
  | Some oc ->
    let b = Buffer.create 96 in
    Buffer.add_string b
      (Printf.sprintf "{\"ev\":\"%s\",\"t\":%.6f" (Json.escape ev) (now () -. st.t0));
    fields_json b fields;
    Buffer.add_string b "}\n";
    Mutex.lock st.emit_lock;
    output_string oc (Buffer.contents b);
    Mutex.unlock st.emit_lock

let journal ev fields = if st.on then write_journal_line ev fields

let event ?(args = []) name =
  if st.on then begin
    write_trace_event ~name ~ph:"i" ~ts:((now () -. st.t0) *. 1e6) args;
    write_journal_line name args
  end

let record_span ?(args = []) name ~seconds =
  if st.on then begin
    Mutex.lock st.emit_lock;
    let agg =
      match Hashtbl.find_opt span_aggs name with
      | Some a -> a
      | None ->
        let a = { calls = 0; total = 0. } in
        Hashtbl.add span_aggs name a;
        a
    in
    agg.calls <- agg.calls + 1;
    agg.total <- agg.total +. seconds;
    Mutex.unlock st.emit_lock;
    let ts = Float.max 0. ((now () -. seconds -. st.t0) *. 1e6) in
    write_trace_event ~name ~ph:"X" ~ts ~dur:(seconds *. 1e6) args;
    write_journal_line "span" (("name", S name) :: ("dur_s", F seconds) :: ("depth", I st.depth) :: args)
  end

let emit_value name v =
  if st.on then
    write_trace_event ~name ~ph:"C" ~ts:((now () -. st.t0) *. 1e6) [ ("value", I v) ]

let with_span ?(args = []) name f =
  if not st.on then f ()
  else begin
    let span_t0 = now () in
    st.depth <- st.depth + 1;
    let finish () =
      st.depth <- st.depth - 1;
      let span_t1 = now () in
      let dt = span_t1 -. span_t0 in
      (* spans run on worker domains too; guard the aggregate table *)
      Mutex.lock st.emit_lock;
      let agg =
        match Hashtbl.find_opt span_aggs name with
        | Some a -> a
        | None ->
          let a = { calls = 0; total = 0. } in
          Hashtbl.add span_aggs name a;
          a
      in
      agg.calls <- agg.calls + 1;
      agg.total <- agg.total +. dt;
      Mutex.unlock st.emit_lock;
      write_trace_event ~name ~ph:"X" ~ts:((span_t0 -. st.t0) *. 1e6) ~dur:(dt *. 1e6) args;
      write_journal_line "span"
        (("name", S name) :: ("dur_s", F dt) :: ("depth", I st.depth) :: args)
    in
    Fun.protect ~finally:finish f
  end

(* ------------------------------------------------------------------ *)
(* Progress                                                             *)
(* ------------------------------------------------------------------ *)

let progress_tick ~label ~expanded ~discovered ~budget ~wave ~frontier =
  if st.progress then begin
    let t = now () in
    if t -. st.last_progress >= 0.2 then begin
      st.last_progress <- t;
      let dt = Float.max 1e-9 (t -. st.t0) in
      let rate = float_of_int expanded /. dt in
      let eta = if rate > 0. then float_of_int frontier /. rate else 0. in
      Printf.eprintf
        "\r[%s] expanded %d / discovered %d (budget %d)  %.0f cfg/s  wave %d  frontier %d  eta %.0fs   %!"
        label expanded discovered budget rate wave frontier eta;
      st.progress_live <- true
    end
  end

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                            *)
(* ------------------------------------------------------------------ *)

let enable ?trace ?journal ?(progress = false) () =
  if st.on then invalid_arg "Telemetry.enable: already enabled (the flag is write-once)";
  st.t0 <- now ();
  st.last_progress <- 0.;
  (match trace with
  | Some path ->
    let oc = open_out path in
    output_string oc "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
    st.trace <- Some oc
  | None -> ());
  (match journal with Some path -> st.journal_oc <- Some (open_out path) | None -> ());
  st.progress <- progress;
  st.on <- true

let shutdown () =
  if st.progress_live then begin
    prerr_newline ();
    st.progress_live <- false
  end;
  st.progress <- false;
  (match st.trace with
  | Some oc ->
    output_string oc "\n]}\n";
    close_out oc;
    st.trace <- None
  | None -> ());
  match st.journal_oc with
  | Some oc ->
    close_out oc;
    st.journal_oc <- None
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Metrics snapshot                                                     *)
(* ------------------------------------------------------------------ *)

let sorted_bindings tbl =
  List.sort (fun (a, _) (b, _) -> compare a b) (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

(* The snapshot is a {e live} API — the service's [stats] verb calls it on
   the event loop while worker domains may be registering new names — so the
   table walks happen under the emit lock (folding a Hashtbl during a
   concurrent resize is unsafe).  Reading the mutable int fields afterwards
   is at worst slightly stale, never torn. *)
let metrics_bindings () =
  Mutex.lock st.emit_lock;
  let cs = sorted_bindings counters
  and hs = sorted_bindings histograms
  and ss = sorted_bindings span_aggs in
  Mutex.unlock st.emit_lock;
  (cs, hs, ss)

let metrics_json () =
  let all_counters, all_histograms, all_spans = metrics_bindings () in
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n  \"schema\": \"dda.telemetry/1\",\n  \"counters\": {";
  let live_counters = List.filter (fun (_, c) -> c.count <> 0) all_counters in
  List.iteri
    (fun i (name, c) ->
      Buffer.add_string b
        (Printf.sprintf "%s\n    \"%s\": %d" (if i > 0 then "," else "") (Json.escape name) c.count))
    live_counters;
  Buffer.add_string b (if live_counters = [] then "},\n" else "\n  },\n");
  Buffer.add_string b "  \"histograms\": {";
  let live_histograms = List.filter (fun (_, h) -> h.n > 0) all_histograms in
  List.iteri
    (fun i (name, h) ->
      Buffer.add_string b
        (Printf.sprintf "%s\n    \"%s\": {\"count\": %d, \"sum\": %d, \"min\": %d, \"max\": %d, \"mean\": %.3f, \"buckets\": {"
           (if i > 0 then "," else "")
           (Json.escape name) h.n h.sum h.lo h.hi
           (float_of_int h.sum /. float_of_int h.n));
      let first = ref true in
      Array.iteri
        (fun k count ->
          if count > 0 then begin
            if not !first then Buffer.add_string b ", ";
            first := false;
            let label = if k = 0 then "0" else Printf.sprintf "lt_%d" (1 lsl k) in
            Buffer.add_string b (Printf.sprintf "\"%s\": %d" label count)
          end)
        h.buckets;
      Buffer.add_string b "}}")
    live_histograms;
  Buffer.add_string b (if live_histograms = [] then "},\n" else "\n  },\n");
  Buffer.add_string b "  \"spans\": {";
  let spans = all_spans in
  List.iteri
    (fun i (name, a) ->
      Buffer.add_string b
        (Printf.sprintf "%s\n    \"%s\": {\"count\": %d, \"total_s\": %.6f, \"mean_s\": %.6f}"
           (if i > 0 then "," else "")
           (Json.escape name) a.calls a.total
           (a.total /. float_of_int (max 1 a.calls))))
    spans;
  Buffer.add_string b (if spans = [] then "},\n" else "\n  },\n");
  Buffer.add_string b "  \"derived\": {";
  let cval name =
    match List.assoc_opt name all_counters with Some c -> c.count | None -> 0
  in
  let derived =
    List.filter_map
      (fun (label, hits, misses) ->
        if hits + misses > 0 then
          Some (label, float_of_int hits /. float_of_int (hits + misses))
        else None)
      [
        ("engine.memo.hit_rate", cval "engine.memo.hits", cval "engine.memo.misses");
        ("cache.hit_rate", cval "cache.hits", cval "cache.misses");
      ]
  in
  List.iteri
    (fun i (name, v) ->
      Buffer.add_string b (Printf.sprintf "%s\n    \"%s\": %.6f" (if i > 0 then "," else "") name v))
    derived;
  Buffer.add_string b (if derived = [] then "}\n}\n" else "\n  }\n}\n");
  Buffer.contents b

let write_metrics path = Out_channel.with_open_bin path (fun oc -> output_string oc (metrics_json ()))

(* ------------------------------------------------------------------ *)
(* Sliding-window histograms                                            *)
(* ------------------------------------------------------------------ *)

module Window = struct
  (* A ring of per-second slots.  Each slot is stamped with the absolute
     second it covers; a slot whose stamp is outside the window is dead and
     is lazily reclaimed the next time its ring position is written — so
     idle gaps cost nothing and expire correctly.  Quantiles come from a
     bounded per-slot sample reservoir: exact up to [slot_cap] observations
     per second, uniformly subsampled beyond that. *)

  type slot = {
    mutable s_sec : int;  (* absolute second this slot covers; -1 = empty *)
    mutable s_n : int;    (* observations recorded that second *)
    mutable s_sum : float;
    samples : float array;
    mutable stored : int; (* live prefix of [samples] *)
  }

  type t = {
    w_name : string;
    window_s : int;
    slots : slot array;   (* window_s entries, indexed sec mod window_s *)
    w_lock : Mutex.t;
    mutable seed : int;   (* cheap LCG state for reservoir replacement *)
  }

  type snapshot = {
    win_s : int;
    count : int;
    sum : float;
    rate : float;  (* count / window_s, observations per second *)
    p50 : float;
    p95 : float;
    p99 : float;
    max_v : float;
  }

  let create ?(window_s = 60) ?(slot_cap = 512) name =
    if window_s < 1 then invalid_arg "Telemetry.Window.create: window_s < 1";
    if slot_cap < 1 then invalid_arg "Telemetry.Window.create: slot_cap < 1";
    {
      w_name = name;
      window_s;
      slots =
        Array.init window_s (fun _ ->
            { s_sec = -1; s_n = 0; s_sum = 0.; samples = Array.make slot_cap 0.; stored = 0 });
      w_lock = Mutex.create ();
      seed = 0x9E3779B9;
    }

  let name w = w.w_name

  (* Windows are owned objects, not global counters: they observe
     unconditionally, independent of the process-wide [st.on] flag, because
     the service's live stats must work even when no sink flag was given. *)
  let observe ?now:(t = now ()) w v =
    Mutex.lock w.w_lock;
    let sec = int_of_float t in
    let s = w.slots.(sec mod w.window_s) in
    if s.s_sec <> sec then begin
      (* ring position belonged to an expired second: recycle it *)
      s.s_sec <- sec;
      s.s_n <- 0;
      s.s_sum <- 0.;
      s.stored <- 0
    end;
    s.s_n <- s.s_n + 1;
    s.s_sum <- s.s_sum +. v;
    let cap = Array.length s.samples in
    if s.stored < cap then begin
      s.samples.(s.stored) <- v;
      s.stored <- s.stored + 1
    end
    else begin
      (* reservoir sampling: keep each of the second's observations with
         equal probability cap/n *)
      w.seed <- ((w.seed * 1103515245) + 12345) land 0x3FFFFFFF;
      let j = w.seed mod s.s_n in
      if j < cap then s.samples.(j) <- v
    end;
    Mutex.unlock w.w_lock

  (* nearest-rank quantile on a sorted array prefix *)
  let quantile sorted n q =
    if n = 0 then 0.
    else begin
      let rank = int_of_float (Float.round (q *. float_of_int (n - 1))) in
      sorted.(max 0 (min (n - 1) rank))
    end

  let snapshot ?now:(t = now ()) w =
    Mutex.lock w.w_lock;
    let cur = int_of_float t in
    let oldest = cur - w.window_s + 1 in
    let count = ref 0 and sum = ref 0. and live = ref 0 in
    Array.iter
      (fun s ->
        if s.s_sec >= oldest && s.s_sec <= cur then begin
          count := !count + s.s_n;
          sum := !sum +. s.s_sum;
          live := !live + s.stored
        end)
      w.slots;
    let merged = Array.make (max 1 !live) 0. in
    let k = ref 0 in
    Array.iter
      (fun s ->
        if s.s_sec >= oldest && s.s_sec <= cur then
          for i = 0 to s.stored - 1 do
            merged.(!k) <- s.samples.(i);
            Stdlib.incr k
          done)
      w.slots;
    Mutex.unlock w.w_lock;
    let n = !k in
    let sub = Array.sub merged 0 (max 1 n) in
    Array.sort compare sub;
    {
      win_s = w.window_s;
      count = !count;
      sum = !sum;
      rate = float_of_int !count /. float_of_int w.window_s;
      p50 = quantile sub n 0.50;
      p95 = quantile sub n 0.95;
      p99 = quantile sub n 0.99;
      max_v = (if n = 0 then 0. else sub.(n - 1));
    }

  let snapshot_json ?now w =
    let s = snapshot ?now w in
    Printf.sprintf
      "{\"window_s\":%d,\"count\":%d,\"sum\":%.6f,\"rate\":%.3f,\"p50\":%.6f,\"p95\":%.6f,\"p99\":%.6f,\"max\":%.6f}"
      s.win_s s.count s.sum s.rate s.p50 s.p95 s.p99 s.max_v
end

(* ------------------------------------------------------------------ *)
(* Registry and validation                                              *)
(* ------------------------------------------------------------------ *)

module Registry = struct
  let counters =
    [
      "engine.configs.interned";
      "engine.configs.dedup_hits";
      "engine.states.interned";
      "engine.memo.hits";
      "engine.memo.misses";
      "engine.table.probes";
      "engine.table.resizes";
      "engine.waves";
      "engine.frontier.peak";
      "engine.spill.segments_out";
      "engine.spill.segments_in";
      "engine.spill.bytes_out";
      "engine.spill.bytes_in";
      "sched.steps";
      "sched.resets";
      "cache.hits";
      "cache.misses";
      "cache.stores";
      "cache.mem_hit";
      "cache.mem_evict";
      "batch.jobs";
      "batch.bounded";
      "batch.errors";
      "symbolic.configs";
      "symbolic.edges";
      "symbolic.deltas";
      "symbolic.instances";
      "wsts.pre.candidates";
      "wsts.basis.grown";
      "wsts.basis.width";
      "service.connections";
      "service.requests";
      "service.hits";
      "service.rejected";
      "service.bounded";
      "service.errors";
      "service.queue.peak";
      "router.requests";
      "router.forwarded";
      "router.retries";
      "router.ejections";
      "router.readmissions";
      "router.errors";
    ]

  let histograms = [ "engine.wave.size"; "sched.selection.size"; "service.latency_ms" ]

  let spans =
    [ "explore"; "scc"; "verdict"; "simulate"; "synthesise"; "telemetry.selftest"; "batch";
      "batch.job"; "service.request"; "symbolic.explore"; "symbolic.certify";
      "wsts.pre_star"; "spill" ]

  let tracks = [ "engine.frontier"; "engine.resident_bytes"; "service.queue" ]

  (* Gauges are point-in-time values reported by the service's live stats
     document ([dda.stats/1]) — not cumulative counters.  Totals that the
     server tracks outside the telemetry counter table (served, computed)
     are listed here too: in the stats document they are point-in-time
     reads of server state. *)
  let gauges =
    [
      "service.uptime_s";
      "service.active_connections";
      "service.queue_depth";
      "service.inflight";
      "service.backlog_bytes";
      "service.draining";
      "service.accepted";
      "service.served";
      "service.computed";
      "service.mem_cache.size";
      "service.mem_cache.capacity";
      "service.mem_cache.hits";
      "service.mem_cache.misses";
      "service.mem_cache.evictions";
      "service.mem_cache.hit_rate";
      "router.backends";
      "router.backends_up";
      "router.queued";
      "engine.resident_bytes";
      "engine.spill.segments";
    ]

  let windows = [ "service.window.latency_ms" ]

  (* <pre><digits><post>, e.g. engine.domain.3.items *)
  let numbered ~pre ~post name =
    let lp = String.length pre and ls = String.length post and ln = String.length name in
    ln > lp + ls
    && String.sub name 0 lp = pre
    && String.sub name (ln - ls) ls = post
    && begin
         let mid = String.sub name lp (ln - lp - ls) in
         mid <> "" && String.for_all (fun ch -> ch >= '0' && ch <= '9') mid
       end

  (* engine.domain.<k>.items *)
  let domain_counter = numbered ~pre:"engine.domain." ~post:".items"

  (* batch.shard.<k>.jobs *)
  let shard_counter = numbered ~pre:"batch.shard." ~post:".jobs"

  let valid_counter name = List.mem name counters || domain_counter name || shard_counter name
  let valid_histogram name = List.mem name histograms
  let valid_span name = List.mem name spans

  (* service.verb.<v> — per-verb request counts; the verb set may grow with
     the protocol, so validation is structural like the domain counters *)
  let verb_gauge name =
    let pre = "service.verb." in
    let lp = String.length pre and ln = String.length name in
    ln > lp
    && String.sub name 0 lp = pre
    && String.for_all
         (fun ch -> (ch >= 'a' && ch <= 'z') || (ch >= '0' && ch <= '9') || ch = '_')
         (String.sub name lp (ln - lp))

  let valid_gauge name = List.mem name gauges || verb_gauge name
  let valid_window name = List.mem name windows
end

let validate_metrics doc =
  let problems = ref [] in
  let bad fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  (match Json.member "schema" doc with
  | Some (Json.Str "dda.telemetry/1") -> ()
  | Some _ -> bad "schema is not \"dda.telemetry/1\""
  | None -> bad "missing \"schema\"");
  let check_section section valid check_value =
    match Json.member section doc with
    | Some (Json.Obj fields) ->
      List.iter
        (fun (name, v) ->
          if not (valid name) then bad "%s: unregistered name %S" section name;
          check_value name v)
        fields
    | Some _ -> bad "%S is not an object" section
    | None -> bad "missing %S" section
  in
  let non_negative_int section name = function
    | Json.Num f when Float.is_integer f && f >= 0. -> ()
    | _ -> bad "%s.%s: not a non-negative integer" section name
  in
  check_section "counters" Registry.valid_counter (non_negative_int "counters");
  check_section "histograms" Registry.valid_histogram (fun name v ->
      List.iter
        (fun key ->
          match Json.member key v with
          | Some (Json.Num _) -> ()
          | _ -> bad "histograms.%s: missing numeric %S" name key)
        [ "count"; "sum"; "min"; "max"; "mean" ]);
  check_section "spans" Registry.valid_span (fun name v ->
      List.iter
        (fun key ->
          match Json.member key v with
          | Some (Json.Num _) -> ()
          | _ -> bad "spans.%s: missing numeric %S" name key)
        [ "count"; "total_s" ]);
  List.rev !problems

let validate_stats doc =
  let problems = ref [] in
  let bad fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  (match Json.member "schema" doc with
  | Some (Json.Str "dda.stats/1") -> ()
  | Some _ -> bad "schema is not \"dda.stats/1\""
  | None -> bad "missing \"schema\"");
  (match Json.member "health" doc with
  | Some (Json.Str ("ok" | "draining" | "overloaded")) -> ()
  | Some (Json.Str s) -> bad "health: unknown state %S" s
  | _ -> bad "missing string \"health\"");
  (match Json.member "gauges" doc with
  | Some (Json.Obj fields) ->
    List.iter
      (fun (name, v) ->
        (* totals carried over from the counter table keep their counter
           names; everything else must be a registered gauge *)
        if not (Registry.valid_gauge name || Registry.valid_counter name) then
          bad "gauges: unregistered name %S" name;
        match v with
        | Json.Num f when Float.is_finite f -> ()
        | _ -> bad "gauges.%s: not a finite number" name)
      fields
  | Some _ -> bad "\"gauges\" is not an object"
  | None -> bad "missing \"gauges\"");
  (match Json.member "windows" doc with
  | Some (Json.Obj fields) ->
    List.iter
      (fun (name, v) ->
        if not (Registry.valid_window name) then bad "windows: unregistered name %S" name;
        List.iter
          (fun key ->
            match Json.member key v with
            | Some (Json.Num _) -> ()
            | _ -> bad "windows.%s: missing numeric %S" name key)
          [ "window_s"; "count"; "rate"; "p50"; "p95"; "p99"; "max" ])
      fields
  | Some _ -> bad "\"windows\" is not an object"
  | None -> bad "missing \"windows\"");
  (match Json.member "telemetry" doc with
  | Some (Json.Obj _ as t) ->
    List.iter (fun p -> bad "telemetry: %s" p) (validate_metrics t)
  | Some _ -> bad "\"telemetry\" is not an object"
  | None -> bad "missing \"telemetry\"");
  List.rev !problems

let validate_trace doc =
  let problems = ref [] in
  let bad fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  (match Json.member "traceEvents" doc with
  | Some (Json.Arr events) ->
    List.iteri
      (fun i ev ->
        let name =
          match Json.member "name" ev with
          | Some (Json.Str s) when s <> "" -> Some s
          | _ ->
            bad "event %d: missing non-empty \"name\"" i;
            None
        in
        (match Json.member "ts" ev with
        | Some (Json.Num ts) when ts >= 0. -> ()
        | _ -> bad "event %d: missing non-negative \"ts\"" i);
        match Json.member "ph" ev with
        | Some (Json.Str "X") ->
          (match Json.member "dur" ev with
          | Some (Json.Num d) when d >= 0. -> ()
          | _ -> bad "event %d: \"X\" event without non-negative \"dur\"" i);
          (match name with
          | Some n when not (Registry.valid_span n) -> bad "event %d: unregistered span %S" i n
          | _ -> ())
        | Some (Json.Str "C") -> (
          match name with
          | Some n when not (List.mem n Registry.tracks) -> bad "event %d: unregistered track %S" i n
          | _ -> ())
        | Some (Json.Str ("i" | "B" | "E" | "M")) -> ()
        | _ -> bad "event %d: missing or unsupported \"ph\"" i)
      events
  | Some _ -> bad "\"traceEvents\" is not an array"
  | None -> bad "missing \"traceEvents\"");
  List.rev !problems

let validate_journal contents =
  let problems = ref [] in
  let bad fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  List.iteri
    (fun i line ->
      if String.trim line <> "" then
        match Json.parse line with
        | Error msg -> bad "line %d: %s" (i + 1) msg
        | Ok doc ->
          (match Json.member "ev" doc with
          | Some (Json.Str _) -> ()
          | _ -> bad "line %d: missing string \"ev\"" (i + 1));
          (match Json.member "t" doc with
          | Some (Json.Num t) when t >= 0. -> ()
          | _ -> bad "line %d: missing non-negative \"t\"" (i + 1)))
    (String.split_on_char '\n' contents);
  List.rev !problems
