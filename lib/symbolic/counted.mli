(** Counted configuration spaces (Prop D.2), packed.

    On cliques and stars, node identity is irrelevant: a configuration is
    the multiset of agent states (plus the centre state for stars), and
    the reachable space has at most [(n+1)^{|Q|}] configurations instead
    of [|Q|^n] — the logarithmic-space object behind the paper's NL upper
    bound.  This module explores that space with the same discipline as
    the explicit packed engine: states are interned to small ids,
    configurations are encoded as sorted [(state id, count)] byte vectors
    in a growable arena, and membership is an FNV-1a open-addressing
    table over the arena.

    Edges are labelled with the {e moved state id} ([-1] for a centre
    move on stars), never with a node: that is exactly the information
    the lifted analyses need — a fair scheduler must move every state
    present in a configuration infinitely often, and which of several
    interchangeable same-state agents moved is unobservable. *)

exception Too_large of int
(** Raised when exploration exceeds the configuration budget. *)

type topology = Clique | Star

type 'l shape =
  | S_clique of 'l Dda_multiset.Multiset.t
  | S_star of 'l * 'l Dda_multiset.Multiset.t

val shape_of_graph : 'l Dda_graph.Graph.t -> 'l shape option
(** Recognise a clique ([n >= 2], all pairs adjacent) or a star ([n >= 3],
    one centre of degree [n-1], leaves of degree 1).  [None] for any other
    topology — those have no counted semantics. *)

type t = {
  topology : topology;
  node_count : int;
  size : int;  (** Reachable counted configurations. *)
  edge_count : int;
  initial : int;
  state_count : int;  (** Distinct machine states interned. *)
  succs : (int * int) list array;
      (** [(moved state id, target)] per configuration; [-1] is the star
          centre.  Silent moves contribute self-loops, exactly as node
          selections do in explicit spaces. *)
  acc : bool array;  (** All agents accepting. *)
  rej : bool array;
  obligations : int list array;
      (** Per configuration: the move labels a fair scheduler owes it —
          the support of the state multiset, plus [-1] for stars. *)
  describe : int -> string;
}

val clique :
  max_configs:int -> ('l, 's) Dda_machine.Machine.t -> 'l Dda_multiset.Multiset.t -> t
(** Counted exploration of the machine on a clique with the given label
    count.  @raise Too_large over budget. *)

val star :
  max_configs:int ->
  ('l, 's) Dda_machine.Machine.t ->
  centre:'l ->
  leaves:'l Dda_multiset.Multiset.t ->
  t
(** Counted exploration on a star.  @raise Too_large over budget. *)

val of_shape :
  max_configs:int -> ('l, 's) Dda_machine.Machine.t -> 'l shape -> t

val of_graph :
  max_configs:int -> ('l, 's) Dda_machine.Machine.t -> 'l Dda_graph.Graph.t -> t option
(** [clique]/[star] via {!shape_of_graph}; [None] when the graph is
    neither. *)

val to_space : t -> Dda_verify.Space.t
(** View as a generic counted {!Dda_verify.Space.t}, so the existing
    bottom-SCC and synchronous analyses apply unchanged. *)
