(** Stable content fingerprints for verification inputs.

    A cached verdict is only reusable if its key pins down everything the
    verdict depends on: the machine's behaviour, the communication graph up
    to isomorphism, the fairness regime, the exploration budget, and the
    engine version.  This module computes each ingredient:

    - {!machine} canonically tabulates the machine over its reachable states
      (via [Dda_machine.Tabulate]); the dump of the full δ table is hashed,
      so two machines with the same behaviour on the label set share a
      fingerprint regardless of their OCaml state representation.  When
      tabulation is infeasible (too many states or profiles) it falls back
      to a {e nominal} fingerprint — name, β and label set — which is still
      sound (distinct keys may recompute, never alias) as long as machine
      names encode their parameters, which every constructor in
      [Dda_protocols] does.
    - {!graph} canonicalises the labelled graph by minimising its
      serialisation over all node permutations (the symmetric group from
      [Dda_verify.Symmetry], reusing the verifier's symmetry machinery), so
      isomorphic relabelled graphs share a fingerprint.  Beyond 8 nodes the
      raw serialisation is used — sound, merely fewer hits across
      isomorphic presentations.
    - {!key} combines both with the regime, the budget and
      {!version_salt}. *)

val version_salt : string
(** Engine-version salt baked into every key; bump it whenever the
    exploration engine or verdict analyses change observably, and all old
    cache entries become stale (skipped, then garbage-collectable). *)

val machine : labels:string list -> (string, 's) Dda_machine.Machine.t -> string
(** Behavioural fingerprint of the machine over the given label alphabet
    (["tab:<hex>"], or ["nom:<hex>"] on the nominal fallback).  Pass the
    alphabet sorted and deduplicated so equal alphabets yield equal
    fingerprints — [Spec.alphabet_of] does. *)

val graph : string Dda_graph.Graph.t -> string
(** Isomorphism-invariant fingerprint of a labelled graph
    (["can:<hex>"] for n ≤ 8, ["raw:<hex>"] beyond). *)

val family : Dda_symbolic.Family.t -> string
(** Fingerprint of a graph {e family} (["fam:<hex>"] over the canonical
    family spec).  Family fingerprints share the graph slot of {!key} but
    can never collide with {!graph} outputs (distinct prefixes). *)

val key :
  ?engine:string ->
  machine:string ->
  graph:string ->
  regime:string ->
  max_configs:int ->
  unit ->
  string
(** The cache key: hex digest over salt, machine and graph fingerprints,
    regime name and budget.  [engine] (default ["explicit"]) is the
    provenance tag of {!Store.entry}: explicit keys use the historical
    salt unchanged, so pre-engine cache entries remain valid, while any
    other engine extends the salt and therefore occupies a disjoint key
    space — symbolic and explicit verdicts never alias. *)
