type result = { count : int; component : int array; members : int list array }

let compute ~vertices ~succs =
  let index = Array.make vertices (-1) in
  let lowlink = Array.make vertices 0 in
  let on_stack = Array.make vertices false in
  let component = Array.make vertices (-1) in
  let stack = ref [] in
  let next_index = ref 0 in
  let next_comp = ref 0 in
  (* Iterative Tarjan: explicit call stack of (vertex, remaining successors). *)
  let visit root =
    let call_stack = ref [ (root, ref (succs root)) ] in
    index.(root) <- !next_index;
    lowlink.(root) <- !next_index;
    incr next_index;
    stack := root :: !stack;
    on_stack.(root) <- true;
    while !call_stack <> [] do
      match !call_stack with
      | [] -> ()
      | (v, remaining) :: rest -> (
        match !remaining with
        | w :: more ->
          remaining := more;
          if index.(w) = -1 then begin
            index.(w) <- !next_index;
            lowlink.(w) <- !next_index;
            incr next_index;
            stack := w :: !stack;
            on_stack.(w) <- true;
            call_stack := (w, ref (succs w)) :: !call_stack
          end
          else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w)
        | [] ->
          call_stack := rest;
          (match rest with
          | (parent, _) :: _ -> lowlink.(parent) <- min lowlink.(parent) lowlink.(v)
          | [] -> ());
          if lowlink.(v) = index.(v) then begin
            let comp = !next_comp in
            incr next_comp;
            let continue = ref true in
            while !continue do
              match !stack with
              | [] -> continue := false
              | w :: tail ->
                stack := tail;
                on_stack.(w) <- false;
                component.(w) <- comp;
                if w = v then continue := false
            done
          end)
    done
  in
  for v = 0 to vertices - 1 do
    if index.(v) = -1 then visit v
  done;
  let members = Array.make !next_comp [] in
  for v = vertices - 1 downto 0 do
    members.(component.(v)) <- v :: members.(component.(v))
  done;
  { count = !next_comp; component; members }

(* Allocation-free variant for packed spaces: successors are addressed as
   [succ v k] for [k < degree v], the result carries no member lists, and all
   bookkeeping lives in int arrays (the DFS stack included), so graphs with
   millions of edges need no list cells at all. *)
type components = { comp_count : int; comp : int array }

let compute_iter ~vertices ~degree ~succ =
  let index = Array.make (max vertices 1) (-1) in
  let lowlink = Array.make (max vertices 1) 0 in
  let on_stack = Array.make (max vertices 1) false in
  let comp = Array.make (max vertices 1) (-1) in
  let stack = Array.make (max vertices 1) 0 in
  let sp = ref 0 in
  let dfs_v = Array.make (max vertices 1) 0 in
  let dfs_e = Array.make (max vertices 1) 0 in
  let next_index = ref 0 in
  let next_comp = ref 0 in
  let push v =
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    stack.(!sp) <- v;
    incr sp;
    on_stack.(v) <- true
  in
  for root = 0 to vertices - 1 do
    if index.(root) = -1 then begin
      let top = ref 0 in
      dfs_v.(0) <- root;
      dfs_e.(0) <- 0;
      push root;
      while !top >= 0 do
        let v = dfs_v.(!top) in
        let k = dfs_e.(!top) in
        if k < degree v then begin
          dfs_e.(!top) <- k + 1;
          let w = succ v k in
          if index.(w) = -1 then begin
            push w;
            incr top;
            dfs_v.(!top) <- w;
            dfs_e.(!top) <- 0
          end
          else if on_stack.(w) && index.(w) < lowlink.(v) then lowlink.(v) <- index.(w)
        end
        else begin
          if lowlink.(v) = index.(v) then begin
            let c = !next_comp in
            incr next_comp;
            let continue = ref true in
            while !continue do
              decr sp;
              let w = stack.(!sp) in
              on_stack.(w) <- false;
              comp.(w) <- c;
              if w = v then continue := false
            done
          end;
          decr top;
          if !top >= 0 then begin
            let p = dfs_v.(!top) in
            if lowlink.(v) < lowlink.(p) then lowlink.(p) <- lowlink.(v)
          end
        end
      done
    end
  done;
  { comp_count = !next_comp; comp }

let is_bottom r ~succs c =
  List.for_all
    (fun v -> List.for_all (fun w -> r.component.(w) = c) (succs v))
    r.members.(c)

let has_internal_edge r ~succs c =
  List.exists (fun v -> List.exists (fun w -> r.component.(w) = c) (succs v)) r.members.(c)
