module Multiset = Dda_multiset.Multiset
module Listx = Dda_util.Listx
module Prng = Dda_util.Prng

type 'l t = { labels : 'l array; adj : int list array }

let nodes g = Array.length g.labels
let label g v = g.labels.(v)
let labels g = Array.copy g.labels
let neighbours g v = g.adj.(v)
let degree g v = List.length g.adj.(v)

let max_degree g =
  Array.fold_left (fun acc l -> max acc (List.length l)) 0 g.adj

let edges g =
  let acc = ref [] in
  for v = nodes g - 1 downto 0 do
    List.iter (fun u -> if v < u then acc := (v, u) :: !acc) g.adj.(v)
  done;
  !acc

let adjacent g u v = List.mem v g.adj.(u)

let is_automorphism g p =
  let n = nodes g in
  Array.length p = n
  && (let seen = Array.make n false in
      Array.for_all
        (fun v ->
          v >= 0 && v < n && not seen.(v)
          &&
          (seen.(v) <- true;
           true))
        p)
  && List.for_all (fun (u, v) -> adjacent g p.(u) p.(v)) (edges g)

let label_count g = Multiset.of_list (Array.to_list g.labels)

let of_edges ~labels edge_list =
  let n = Array.length labels in
  let check v = if v < 0 || v >= n then invalid_arg "Graph.of_edges: node out of range" in
  let sets = Array.make n [] in
  List.iter
    (fun (u, v) ->
      check u;
      check v;
      if u = v then invalid_arg "Graph.of_edges: self-loop";
      if not (List.mem v sets.(u)) then begin
        sets.(u) <- v :: sets.(u);
        sets.(v) <- u :: sets.(v)
      end)
    edge_list;
  { labels = Array.copy labels; adj = Array.map (List.sort Stdlib.compare) sets }

let is_connected g =
  let n = nodes g in
  if n = 0 then false
  else begin
    let seen = Array.make n false in
    let rec dfs v =
      if not seen.(v) then begin
        seen.(v) <- true;
        List.iter dfs g.adj.(v)
      end
    in
    dfs 0;
    Array.for_all (fun b -> b) seen
  end

let validate g =
  if nodes g < 3 then Error "graph has fewer than three nodes"
  else if not (is_connected g) then Error "graph is not connected"
  else Ok ()

let relabel f g = { g with labels = Array.map f g.labels }

(* --- Families --------------------------------------------------------- *)

let clique label_list =
  let labels = Array.of_list label_list in
  let n = Array.length labels in
  let edge_list =
    List.concat_map (fun u -> List.map (fun v -> (u, v)) (Listx.range_in (u + 1) (n - 1))) (Listx.range n)
  in
  of_edges ~labels edge_list

let star ~centre ~leaves =
  let labels = Array.of_list (centre :: leaves) in
  of_edges ~labels (List.map (fun i -> (0, i + 1)) (Listx.range (List.length leaves)))

let line label_list =
  let labels = Array.of_list label_list in
  let n = Array.length labels in
  if n < 2 then invalid_arg "Graph.line: need at least two nodes";
  of_edges ~labels (List.map (fun i -> (i, i + 1)) (Listx.range (n - 1)))

let cycle label_list =
  let labels = Array.of_list label_list in
  let n = Array.length labels in
  if n < 3 then invalid_arg "Graph.cycle: need at least three nodes";
  of_edges ~labels (List.map (fun i -> (i, (i + 1) mod n)) (Listx.range n))

let grid ~width ~height f =
  if width < 1 || height < 1 then invalid_arg "Graph.grid: empty";
  let idx x y = (y * width) + x in
  let labels = Array.init (width * height) (fun i -> f (i mod width) (i / width)) in
  let edge_list =
    List.concat_map
      (fun y ->
        List.concat_map
          (fun x ->
            let right = if x + 1 < width then [ (idx x y, idx (x + 1) y) ] else [] in
            let down = if y + 1 < height then [ (idx x y, idx x (y + 1)) ] else [] in
            right @ down)
          (Listx.range width))
      (Listx.range height)
  in
  of_edges ~labels edge_list

let torus ~width ~height f =
  if width < 3 || height < 3 then invalid_arg "Graph.torus: dimensions must be >= 3";
  let idx x y = (y * width) + x in
  let labels = Array.init (width * height) (fun i -> f (i mod width) (i / width)) in
  let edge_list =
    List.concat_map
      (fun y ->
        List.concat_map
          (fun x -> [ (idx x y, idx ((x + 1) mod width) y); (idx x y, idx x ((y + 1) mod height)) ])
          (Listx.range width))
      (Listx.range height)
  in
  of_edges ~labels edge_list

let random_connected rng ~degree_bound label_list =
  if degree_bound < 2 then invalid_arg "Graph.random_connected: degree bound must be >= 2";
  let labels = Array.of_list (Prng.shuffle_list rng label_list) in
  let n = Array.length labels in
  if n < 1 then invalid_arg "Graph.random_connected: empty label list";
  let deg = Array.make n 0 in
  (* Random spanning structure: attach node i to a previous node with spare
     degree capacity; fall back to i-1 (a line always fits bound >= 2). *)
  let tree_edges =
    List.filter_map
      (fun i ->
        if i = 0 then None
        else begin
          let candidates =
            List.filter (fun j -> deg.(j) < degree_bound - (if i < n - 1 then 1 else 0)) (Listx.range i)
          in
          let parent = match candidates with [] -> i - 1 | l -> Prng.pick rng l in
          deg.(parent) <- deg.(parent) + 1;
          deg.(i) <- deg.(i) + 1;
          Some (parent, i)
        end)
      (Listx.range n)
  in
  (* Extra edges: a few random attempts, kept when the degree bound allows. *)
  let extra = ref [] in
  let attempts = 2 * n in
  let have u v =
    List.exists (fun (a, b) -> (a = u && b = v) || (a = v && b = u)) (tree_edges @ !extra)
  in
  for _ = 1 to attempts do
    if n >= 2 then begin
      let u = Prng.int rng n and v = Prng.int rng n in
      if u <> v && deg.(u) < degree_bound && deg.(v) < degree_bound && not (have u v) then begin
        deg.(u) <- deg.(u) + 1;
        deg.(v) <- deg.(v) + 1;
        extra := (u, v) :: !extra
      end
    end
  done;
  of_edges ~labels (tree_edges @ !extra)

let hypercube ~dim f =
  if dim < 2 then invalid_arg "Graph.hypercube: dimension must be >= 2";
  let n = 1 lsl dim in
  let labels = Array.init n f in
  let edge_list =
    List.concat_map
      (fun i ->
        List.filter_map
          (fun b ->
            let j = i lxor (1 lsl b) in
            if i < j then Some (i, j) else None)
          (Listx.range dim))
      (Listx.range n)
  in
  of_edges ~labels edge_list

let complete_bipartite left right =
  let m = List.length left and n = List.length right in
  if m < 1 || n < 1 || m + n < 3 then
    invalid_arg "Graph.complete_bipartite: parts too small";
  let labels = Array.of_list (left @ right) in
  let edge_list =
    List.concat_map (fun i -> List.map (fun j -> (i, m + j)) (Listx.range n)) (Listx.range m)
  in
  of_edges ~labels edge_list

let binary_tree label_list =
  let labels = Array.of_list label_list in
  let n = Array.length labels in
  if n < 3 then invalid_arg "Graph.binary_tree: need at least three nodes";
  let edge_list =
    List.filter_map (fun i -> if i = 0 then None else Some ((i - 1) / 2, i)) (Listx.range n)
  in
  of_edges ~labels edge_list

let barbell left ~bridge right =
  let m = List.length left and b = List.length bridge and n = List.length right in
  if m < 2 || n < 2 then invalid_arg "Graph.barbell: cliques need at least two nodes";
  let labels = Array.of_list (left @ bridge @ right) in
  let clique_edges off size =
    List.concat_map
      (fun i -> List.map (fun j -> (off + i, off + j)) (Listx.range_in (i + 1) (size - 1)))
      (Listx.range size)
  in
  let path_edges =
    (* last-left — bridge nodes — first-right *)
    let chain = (m - 1) :: List.map (fun i -> m + i) (Listx.range b) @ [ m + b ] in
    let rec pairs = function a :: (b :: _ as rest) -> (a, b) :: pairs rest | _ -> [] in
    pairs chain
  in
  of_edges ~labels (clique_edges 0 m @ clique_edges (m + b) n @ path_edges)

(* --- Coverings -------------------------------------------------------- *)

let cycle_cover ~fold label_list =
  if fold < 1 then invalid_arg "Graph.cycle_cover: fold must be >= 1";
  let repeated = List.concat (List.init fold (fun _ -> label_list)) in
  cycle repeated

let cycle_cover_map ~fold label_list =
  let base = List.length label_list in
  if fold < 1 || base < 1 then invalid_arg "Graph.cycle_cover_map";
  fun i -> i mod base

let is_covering_map ~covering ~base f =
  let n_h = nodes covering and n_g = nodes base in
  let image = Array.make n_g false in
  let ok_node v =
    let fv = f v in
    if fv < 0 || fv >= n_g then false
    else begin
      image.(fv) <- true;
      (* labels preserved *)
      label covering v = label base fv
      &&
      (* neighbourhood of v maps bijectively onto neighbourhood of f v *)
      let nb_images = List.map f (neighbours covering v) in
      let sorted = List.sort Stdlib.compare nb_images in
      sorted = neighbours base fv
    end
  in
  List.for_all ok_node (Listx.range n_h) && Array.for_all (fun b -> b) image

(* --- Lemma 3.1 chain construction ------------------------------------- *)

let remove_edge g (u, v) =
  let strip w l = List.filter (fun x -> x <> w) l in
  let adj = Array.copy g.adj in
  adj.(u) <- strip v adj.(u);
  adj.(v) <- strip u adj.(v);
  { g with adj }

let find_cycle_edge g =
  List.find_opt (fun e -> is_connected (remove_edge g e)) (edges g)

let chain_of_copies ~g ~g_edge:(ug, vg) ~g_copies ~h ~h_edge:(uh, vh) ~h_copies =
  if not (adjacent g ug vg) then invalid_arg "Graph.chain_of_copies: g_edge is not an edge";
  if not (adjacent h uh vh) then invalid_arg "Graph.chain_of_copies: h_edge is not an edge";
  if g_copies < 1 || h_copies < 1 then invalid_arg "Graph.chain_of_copies: need >= 1 copies";
  let ng = nodes g and nh = nodes h in
  let g_base i = i * ng in
  let h_base i = (g_copies * ng) + (i * nh) in
  let total = (g_copies * ng) + (h_copies * nh) in
  let labels =
    Array.init total (fun x ->
        if x < g_copies * ng then label g (x mod ng) else label h ((x - (g_copies * ng)) mod nh))
  in
  let g_cut = edges (remove_edge g (ug, vg)) in
  let h_cut = edges (remove_edge h (uh, vh)) in
  let internal =
    List.concat_map
      (fun i -> List.map (fun (a, b) -> (g_base i + a, g_base i + b)) g_cut)
      (Listx.range g_copies)
    @ List.concat_map
        (fun i -> List.map (fun (a, b) -> (h_base i + a, h_base i + b)) h_cut)
        (Listx.range h_copies)
  in
  (* Splice: v_G^i -- u_G^{i+1}, then v_G^{last} -- u_H^0, then v_H^i -- u_H^{i+1}. *)
  let splice =
    List.map (fun i -> (g_base i + vg, g_base (i + 1) + ug)) (Listx.range (g_copies - 1))
    @ [ (g_base (g_copies - 1) + vg, h_base 0 + uh) ]
    @ List.map (fun i -> (h_base i + vh, h_base (i + 1) + uh)) (Listx.range (h_copies - 1))
  in
  let chained = of_edges ~labels (internal @ splice) in
  let back x =
    if x < g_copies * ng then `G (x / ng, x mod ng)
    else
      let y = x - (g_copies * ng) in
      `H (y / nh, y mod nh)
  in
  (chained, back)

let pp pp_label fmt g =
  Format.fprintf fmt "@[<v>graph with %d nodes:@," (nodes g);
  for v = 0 to nodes g - 1 do
    Format.fprintf fmt "  %d[%a] -- {%a}@," v pp_label (label g v)
      (Listx.pp_list ~sep:", " Format.pp_print_int)
      (neighbours g v)
  done;
  Format.fprintf fmt "@]"

let to_dot ?(name = "g") pp_label fmt g =
  Format.fprintf fmt "@[<v>graph %s {@," name;
  for v = 0 to nodes g - 1 do
    Format.fprintf fmt "  n%d [label=\"%d:%a\"];@," v v pp_label (label g v)
  done;
  List.iter (fun (u, v) -> Format.fprintf fmt "  n%d -- n%d;@," u v) (edges g);
  Format.fprintf fmt "}@]"
