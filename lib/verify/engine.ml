(* The packed exploration core (see doc/INTERNALS.md).

   Replaces the polymorphic-hashtable worklist of the legacy explorer on the
   hot path:

   - machine states are interned to dense ids once; configurations become
     fixed-width byte strings (1, 2 or 4 bytes per node, upgraded on the
     fly), deduplicated through an open-addressing FNV table over a single
     growable byte store;
   - delta evaluation is memoised per (state id, capped neighbourhood
     profile), so the structured transition functions of compiled automata
     (Lemmas 4.7/4.9/4.10) are evaluated once per distinct observation; the
     memo is itself a string-keyed open-addressing table probed directly
     against the scratch key buffer, so a hit allocates nothing;
   - edges are stored in an implicit-CSR int array: every configuration has
     exactly [node_count] out-edges (edge [k] = select node [k]; silent
     moves are self-loops), so [targets.(i * node_count + k)] is the whole
     edge structure;
   - configurations can be canonicalised under a {!Symmetry} group — the
     reduced space stores one representative per orbit, and every edge
     records the group element used, so {!Decide} can run the exact lifted
     adversarial analysis;
   - frontier expansion (the delta/memo part) can fan out over OCaml 5
     domains; interning stays sequential, so verdicts are deterministic and
     ids are reproducible for [jobs = 1].  Parallelism is gated on the
     machine's core count and a measured per-wave work threshold (see
     "Parallel gates" below), because spawning domains for small waves — or
     on a single-core host — only adds overhead.

   Telemetry: the hot loops accumulate plain mutable ints (probes, memo
   hits, per-domain items) and flush them into [Dda_telemetry] counters at
   phase boundaries, so instrumentation costs nothing measurable whether or
   not telemetry is enabled; per-wave counter tracks, the progress line and
   the frontier histogram are emitted between waves. *)

module Machine = Dda_machine.Machine
module Neighbourhood = Dda_machine.Neighbourhood
module Graph = Dda_graph.Graph
module T = Dda_telemetry.Telemetry

exception Too_large of int

type stats = {
  state_count : int;  (* distinct machine states interned *)
  delta_evals : int;  (* real delta calls (memo misses) *)
  delta_lookups : int;  (* total delta requests *)
  table_probes : int;  (* config-table slot inspections *)
  table_resizes : int;
  dedup_hits : int;  (* intern_config calls that found an existing config *)
  waves : int;  (* frontier chunks processed *)
  peak_frontier : int;  (* max configurations discovered but not yet expanded *)
  domain_items : int array;  (* configurations expanded per domain slot *)
}

type t = {
  node_count : int;
  size : int;
  initial : int;
  initial_sigma : int;  (* group element canonicalising the initial config *)
  targets : int array;  (* implicit CSR: edge k of config i at i*node_count + k *)
  sigmas : int array;  (* per-edge group element; [||] when unreduced *)
  acc : bool array;  (* all nodes accepting *)
  rej : bool array;
  describe : int -> string;
  symmetry : Symmetry.t option;  (* Some g with order > 1 when reduced *)
  stats : stats;
}

let reduced e = e.symmetry <> None

(* ------------------------------------------------------------------ *)
(* Telemetry counters (inert single-branch no-ops until enabled)        *)
(* ------------------------------------------------------------------ *)

let c_configs = T.counter "engine.configs.interned"
let c_dedup = T.counter "engine.configs.dedup_hits"
let c_states = T.counter "engine.states.interned"
let c_memo_hits = T.counter "engine.memo.hits"
let c_memo_misses = T.counter "engine.memo.misses"
let c_probes = T.counter "engine.table.probes"
let c_resizes = T.counter "engine.table.resizes"
let c_waves = T.counter "engine.waves"
let c_peak = T.counter "engine.frontier.peak"
let h_wave = T.histogram "engine.wave.size"

(* ------------------------------------------------------------------ *)
(* Parallel gates                                                       *)
(* ------------------------------------------------------------------ *)

let getenv_int name default =
  match Sys.getenv_opt name with
  | Some s -> (match int_of_string_opt s with Some v when v >= 1 -> v | _ -> default)
  | None -> default

(* Worker domains beyond the physical core count cannot help and the
   per-wave Domain.spawn/join plus minor-GC barriers actively hurt — on a
   single-core host engine-j2 measured ~2.8x slower than sequential before
   this gate existed (BENCH_verify.json, PR 1).  Overridable for tests and
   experiments via DDA_PAR_CORES. *)
let par_cores = lazy (getenv_int "DDA_PAR_CORES" (Domain.recommended_domain_count ()))

(* Waves below this many work items (frontier length x node count) run
   sequentially.  A memoised work item costs ~0.1-0.6 us; a Domain.spawn/
   join pair costs tens of microseconds on an idle multicore host (and
   ~3.3 ms measured on the project's 1-core CI container, where the cores
   cap above already forces sequential execution).  16384 items = ms-scale
   waves, keeping spawn overhead in the low percent on hosts where
   parallelism can help at all.  Overridable via DDA_PAR_THRESHOLD; see
   doc/INTERNALS.md "Parallel frontier expansion". *)
let par_threshold = lazy (getenv_int "DDA_PAR_THRESHOLD" 16384)

(* ------------------------------------------------------------------ *)
(* Growable buffers                                                     *)
(* ------------------------------------------------------------------ *)

type ibuf = { mutable idata : int array; mutable ilen : int }

let ibuf_create n = { idata = Array.make (max n 16) 0; ilen = 0 }

let ibuf_push b x =
  if b.ilen = Array.length b.idata then begin
    let d = Array.make (2 * b.ilen) 0 in
    Array.blit b.idata 0 d 0 b.ilen;
    b.idata <- d
  end;
  b.idata.(b.ilen) <- x;
  b.ilen <- b.ilen + 1

let ibuf_contents b = Array.sub b.idata 0 b.ilen

(* ------------------------------------------------------------------ *)
(* State interner                                                       *)
(* ------------------------------------------------------------------ *)

type 's interner = {
  tbl : ('s, int) Hashtbl.t;
  mutable states : 's array;  (* entries < [n] are valid *)
  mutable flags : Bytes.t;  (* per state: bit 0 accepting, bit 1 rejecting *)
  mutable n : int;
  lock : Mutex.t;
  s_acc : 's -> bool;
  s_rej : 's -> bool;
}

let interner_create ~acc ~rej first =
  let it =
    {
      tbl = Hashtbl.create 256;
      states = Array.make 64 first;
      flags = Bytes.make 64 '\000';
      n = 0;
      lock = Mutex.create ();
      s_acc = acc;
      s_rej = rej;
    }
  in
  it

(* Thread-safe: workers intern delta results concurrently (misses are rare).
   Readers use snapshots of [states]/[n] taken between phases, so no reader
   ever races a resize. *)
let intern_state it s =
  Mutex.lock it.lock;
  let id =
    match Hashtbl.find_opt it.tbl s with
    | Some i -> i
    | None ->
      let i = it.n in
      if i = Array.length it.states then begin
        let d = Array.make (2 * i) s in
        Array.blit it.states 0 d 0 i;
        it.states <- d;
        let f = Bytes.make (2 * i) '\000' in
        Bytes.blit it.flags 0 f 0 i;
        it.flags <- f
      end;
      it.states.(i) <- s;
      let fl = (if it.s_acc s then 1 else 0) lor if it.s_rej s then 2 else 0 in
      Bytes.set it.flags i (Char.chr fl);
      it.n <- i + 1;
      Hashtbl.add it.tbl s i;
      i
  in
  Mutex.unlock it.lock;
  id

let state_acc it i = Char.code (Bytes.get it.flags i) land 1 <> 0
let state_rej it i = Char.code (Bytes.get it.flags i) land 2 <> 0

(* ------------------------------------------------------------------ *)
(* Packed configuration store with an open-addressing FNV table          *)
(* ------------------------------------------------------------------ *)

type store = {
  cells : int;  (* nodes per configuration *)
  mutable width : int;  (* bytes per cell: 1, 2 or 4 *)
  mutable bytes : Bytes.t;  (* config i at offset i * cells * width *)
  mutable count : int;
  mutable hashes : int array;  (* per config, for cheap resize *)
  mutable table : int array;  (* open addressing, -1 = empty *)
  mutable mask : int;
  cflags : Buffer.t;  (* per config: bit 0 acc, bit 1 rej *)
  mutable probes : int;  (* telemetry: slot inspections *)
  mutable resizes : int;
  mutable dedup_hits : int;
}

let store_create cells =
  {
    cells;
    width = 1;
    bytes = Bytes.create (cells * 1024);
    count = 0;
    hashes = Array.make 1024 0;
    table = Array.make 4096 (-1);
    mask = 4095;
    cflags = Buffer.create 1024;
    probes = 0;
    resizes = 0;
    dedup_hits = 0;
  }

let fnv_prime = 0x100000001b3

let hash_ids ids len =
  let h = ref 0x14650FB0739D0383 in
  for i = 0 to len - 1 do
    (* mix the full id, byte-order independent of the pack width *)
    h := (!h lxor ids.(i)) * fnv_prime
  done;
  !h land max_int

let width_limit w = 1 lsl (8 * w)

let pack_cell st off id =
  match st.width with
  | 1 -> Bytes.unsafe_set st.bytes off (Char.unsafe_chr id)
  | 2 -> Bytes.set_uint16_le st.bytes off id
  | _ -> Bytes.set_int32_le st.bytes off (Int32.of_int id)

let unpack_cell st off =
  match st.width with
  | 1 -> Char.code (Bytes.unsafe_get st.bytes off)
  | 2 -> Bytes.get_uint16_le st.bytes off
  | _ -> Int32.to_int (Bytes.get_int32_le st.bytes off) land 0xFFFFFFFF

let decode st i out =
  let w = st.width in
  let off = ref (i * st.cells * w) in
  for v = 0 to st.cells - 1 do
    out.(v) <- unpack_cell st !off;
    off := !off + w
  done

(* Grow the cell width (1 -> 2 -> 4) once a state id no longer fits,
   re-packing every stored configuration.  Hashes are width-independent, so
   the table survives unchanged. *)
let upgrade_width st =
  let w = st.width in
  let w' = if w = 1 then 2 else 4 in
  let nbytes' = st.cells * w' in
  let fresh = Bytes.create (max (st.count * nbytes' * 2) nbytes') in
  let tmp = Array.make st.cells 0 in
  for i = 0 to st.count - 1 do
    decode st i tmp;
    let off = ref (i * nbytes') in
    for v = 0 to st.cells - 1 do
      (match w' with
      | 2 -> Bytes.set_uint16_le fresh !off tmp.(v)
      | _ -> Bytes.set_int32_le fresh !off (Int32.of_int tmp.(v)));
      off := !off + w'
    done
  done;
  st.bytes <- fresh;
  st.width <- w'

let store_resize_table st =
  st.resizes <- st.resizes + 1;
  let cap = 2 * (st.mask + 1) in
  let t = Array.make cap (-1) in
  let m = cap - 1 in
  for i = 0 to st.count - 1 do
    let h = ref (st.hashes.(i) land m) in
    while t.(!h) >= 0 do
      h := (!h + 1) land m
    done;
    t.(!h) <- i
  done;
  st.table <- t;
  st.mask <- m

let config_equal st i ids =
  let w = st.width in
  let off = ref (i * st.cells * w) in
  let rec go v =
    v >= st.cells
    || unpack_cell st !off = ids.(v)
       && begin
            off := !off + w;
            go (v + 1)
          end
  in
  go 0

(* Intern the configuration [ids] (an array of [cells] state ids); returns
   (index, fresh).  [flags] are the acc/rej bits of the configuration. *)
let intern_config st ~max_configs ids flags =
  let h = hash_ids ids st.cells in
  let m = st.mask in
  let slot = ref (h land m) in
  let found = ref (-2) in
  while !found = -2 do
    st.probes <- st.probes + 1;
    let j = st.table.(!slot) in
    if j < 0 then found := -1
    else if st.hashes.(j) = h && config_equal st j ids then found := j
    else slot := (!slot + 1) land m
  done;
  if !found >= 0 then begin
    st.dedup_hits <- st.dedup_hits + 1;
    (!found, false)
  end
  else begin
    if st.count >= max_configs then raise (Too_large st.count);
    let i = st.count in
    let nbytes = st.cells * st.width in
    if (i + 1) * nbytes > Bytes.length st.bytes then begin
      let fresh = Bytes.create (2 * Bytes.length st.bytes) in
      Bytes.blit st.bytes 0 fresh 0 (i * nbytes);
      st.bytes <- fresh
    end;
    let off = ref (i * nbytes) in
    for v = 0 to st.cells - 1 do
      pack_cell st !off ids.(v);
      off := !off + st.width
    done;
    if i = Array.length st.hashes then begin
      let d = Array.make (2 * i) 0 in
      Array.blit st.hashes 0 d 0 i;
      st.hashes <- d
    end;
    st.hashes.(i) <- h;
    Buffer.add_char st.cflags (Char.chr flags);
    st.table.(!slot) <- i;
    st.count <- i + 1;
    if 2 * st.count > st.mask then store_resize_table st;
    (i, true)
  end

(* ------------------------------------------------------------------ *)
(* Delta memoisation                                                    *)
(* ------------------------------------------------------------------ *)

(* String-keyed open-addressing memo probed directly against the scratch
   key buffer: a hit compares bytes in place and allocates nothing.  The
   key string is only materialised on a miss (when the expensive delta call
   happens anyway).  "" marks a free slot — real keys are >= 4 bytes. *)
type memo = {
  mutable mkeys : string array;
  mutable mids : int array;
  mutable mhash : int array;
  mutable mmask : int;
  mutable mn : int;
}

let memo_create () =
  { mkeys = Array.make 8192 ""; mids = Array.make 8192 (-1); mhash = Array.make 8192 0; mmask = 8191; mn = 0 }

let memo_hash kb len =
  let h = ref 0x14650FB0739D0383 in
  for i = 0 to len - 1 do
    h := (!h lxor Char.code (Bytes.unsafe_get kb i)) * fnv_prime
  done;
  !h land max_int

let key_matches key kb len =
  String.length key = len
  && begin
       let rec go i = i >= len || (String.unsafe_get key i = Bytes.unsafe_get kb i && go (i + 1)) in
       go 0
     end

(* -1 = miss *)
let memo_find m kb len h =
  let mask = m.mmask in
  let rec probe slot =
    let key = m.mkeys.(slot) in
    if String.length key = 0 then -1
    else if m.mhash.(slot) = h && key_matches key kb len then m.mids.(slot)
    else probe ((slot + 1) land mask)
  in
  probe (h land mask)

let memo_resize m =
  let cap = 2 * (m.mmask + 1) in
  let keys = Array.make cap "" and ids = Array.make cap (-1) and hs = Array.make cap 0 in
  let mask = cap - 1 in
  for i = 0 to m.mmask do
    let key = m.mkeys.(i) in
    if String.length key > 0 then begin
      let slot = ref (m.mhash.(i) land mask) in
      while String.length keys.(!slot) > 0 do
        slot := (!slot + 1) land mask
      done;
      keys.(!slot) <- key;
      ids.(!slot) <- m.mids.(i);
      hs.(!slot) <- m.mhash.(i)
    end
  done;
  m.mkeys <- keys;
  m.mids <- ids;
  m.mhash <- hs;
  m.mmask <- mask

let memo_add m key h id =
  let mask = m.mmask in
  let slot = ref (h land mask) in
  while String.length m.mkeys.(!slot) > 0 do
    slot := (!slot + 1) land mask
  done;
  m.mkeys.(!slot) <- key;
  m.mids.(!slot) <- id;
  m.mhash.(!slot) <- h;
  m.mn <- m.mn + 1;
  if 2 * m.mn > m.mmask then memo_resize m

(* Manual little-endian 32-bit writes/reads: guaranteed allocation-free
   (no int32 boxing), which matters because the key is rebuilt on every
   delta lookup. *)
let put32 kb pos v =
  Bytes.unsafe_set kb pos (Char.unsafe_chr (v land 0xFF));
  Bytes.unsafe_set kb (pos + 1) (Char.unsafe_chr ((v lsr 8) land 0xFF));
  Bytes.unsafe_set kb (pos + 2) (Char.unsafe_chr ((v lsr 16) land 0xFF));
  Bytes.unsafe_set kb (pos + 3) (Char.unsafe_chr ((v lsr 24) land 0xFF))

let get32 kb pos =
  Char.code (Bytes.unsafe_get kb pos)
  lor (Char.code (Bytes.unsafe_get kb (pos + 1)) lsl 8)
  lor (Char.code (Bytes.unsafe_get kb (pos + 2)) lsl 16)
  lor (Char.code (Bytes.unsafe_get kb (pos + 3)) lsl 24)

(* A worker's local view: the machine, the graph structure, a snapshot of
   the interner (only pre-chunk state ids ever need decoding), and a private
   memo table keyed by (state id, capped profile) packed into a string. *)
type 's ctx = {
  beta : int;
  delta : 's -> 's Neighbourhood.t -> 's;
  interner : 's interner;
  nbr : int array array;
  memo : memo;
  key_buf : Bytes.t;  (* scratch: 4 + 8 * max_degree bytes *)
  pid : int array;  (* scratch: sorted neighbour ids *)
  mutable evals : int;
  mutable lookups : int;
  mutable items : int;  (* configurations expanded by this worker *)
}

let ctx_create m nbr interner =
  let max_deg = Array.fold_left (fun a ns -> max a (Array.length ns)) 1 nbr in
  {
    beta = m.Machine.beta;
    delta = m.Machine.delta;
    interner;
    nbr;
    memo = memo_create ();
    key_buf = Bytes.create (4 + (8 * max_deg));
    pid = Array.make max_deg 0;
    evals = 0;
    lookups = 0;
    items = 0;
  }

(* New state id of node [v] in the configuration [cur] (state ids per node). *)
let delta_id ctx ~snapshot cur v =
  ctx.lookups <- ctx.lookups + 1;
  let ns = ctx.nbr.(v) in
  let deg = Array.length ns in
  let pid = ctx.pid in
  for k = 0 to deg - 1 do
    (* insertion sort: degrees are tiny *)
    let x = cur.(ns.(k)) in
    let j = ref k in
    while !j > 0 && pid.(!j - 1) > x do
      pid.(!j) <- pid.(!j - 1);
      decr j
    done;
    pid.(!j) <- x
  done;
  (* build the memo key: v's state id, then (id, capped count) runs *)
  let kb = ctx.key_buf in
  put32 kb 0 cur.(v);
  let pos = ref 4 in
  let k = ref 0 in
  while !k < deg do
    let id = pid.(!k) in
    let c = ref 0 in
    while !k < deg && pid.(!k) = id do
      incr c;
      incr k
    done;
    put32 kb !pos id;
    put32 kb (!pos + 4) (min !c ctx.beta);
    pos := !pos + 8
  done;
  let len = !pos in
  let h = memo_hash kb len in
  let cached = memo_find ctx.memo kb len h in
  if cached >= 0 then cached
  else begin
    ctx.evals <- ctx.evals + 1;
    let sarr, _sn = snapshot in
    (* reconstruct the capped neighbour state list; [of_states] re-sorts and
       re-caps, so this is exactly the observation the legacy engine built *)
    let states = ref [] in
    let p = ref 4 in
    while !p < len do
      let id = get32 kb !p in
      let c = get32 kb (!p + 4) in
      for _ = 1 to c do
        states := sarr.(id) :: !states
      done;
      p := !p + 8
    done;
    let nb = Neighbourhood.of_states ~beta:ctx.beta !states in
    let q' = ctx.delta sarr.(cur.(v)) nb in
    let id = intern_state ctx.interner q' in
    memo_add ctx.memo (Bytes.sub_string kb 0 len) h id;
    id
  end

(* ------------------------------------------------------------------ *)
(* Canonicalisation                                                     *)
(* ------------------------------------------------------------------ *)

(* Lexicographically least id sequence over the group; returns the index of
   the canonicalising element and leaves the winner in [best]. *)
let canonicalise perms ids best scratch =
  let n = Array.length ids in
  Array.blit ids 0 best 0 n;
  let sigma = ref 0 in
  for e = 1 to Array.length perms - 1 do
    let p = perms.(e) in
    for v = 0 to n - 1 do
      scratch.(v) <- ids.(p.(v))
    done;
    let rec cmp v = if v >= n then 0 else if scratch.(v) <> best.(v) then compare scratch.(v) best.(v) else cmp (v + 1) in
    if cmp 0 < 0 then begin
      Array.blit scratch 0 best 0 n;
      sigma := e
    end
  done;
  !sigma

(* ------------------------------------------------------------------ *)
(* Exploration                                                          *)
(* ------------------------------------------------------------------ *)

let chunk_size = 4096

let explore ?(jobs = 1) ?symmetry ?(states = []) ~max_configs m g =
  let n = Graph.nodes g in
  if n < 1 then invalid_arg "Engine.explore: empty graph";
  let sym =
    match symmetry with
    | Some s when not (Symmetry.is_trivial s) ->
      if Symmetry.degree s <> n then invalid_arg "Engine.explore: symmetry degree mismatch";
      Some s
    | _ -> None
  in
  let perms = match sym with Some s -> Symmetry.perms s | None -> [| Array.init n (fun v -> v) |] in
  let nbr = Array.init n (fun v -> Array.of_list (Graph.neighbours g v)) in
  let c0 = Array.init n (fun v -> m.Machine.init (Graph.label g v)) in
  let interner = interner_create ~acc:m.Machine.accepting ~rej:m.Machine.rejecting c0.(0) in
  List.iter (fun s -> ignore (intern_state interner s)) states;
  let st = store_create n in
  let targets = ibuf_create (n * 1024) in
  let sigmas = ibuf_create (if sym = None then 16 else n * 1024) in
  (* never spawn more workers than cores: on an oversubscribed or
     single-core host the spawn/join and GC barriers make jobs > cores a
     strict loss (the gate of satellite measurement, doc/INTERNALS.md) *)
  let jobs = max 1 (min (min jobs 64) (Lazy.force par_cores)) in
  let seq_threshold = Lazy.force par_threshold in
  let ctxs = Array.init jobs (fun _ -> ctx_create m nbr interner) in
  (* flag bits of a configuration from per-state flags *)
  let config_flags ids =
    let a = ref true and r = ref true in
    for v = 0 to n - 1 do
      a := !a && state_acc interner ids.(v);
      r := !r && state_rej interner ids.(v)
    done;
    (if !a then 1 else 0) lor if !r then 2 else 0
  in
  let best = Array.make n 0 and scratch = Array.make n 0 in
  let intern_canonical ids =
    let sigma = if sym = None then (Array.blit ids 0 best 0 n; 0) else canonicalise perms ids best scratch in
    let i, fresh = intern_config st ~max_configs best (config_flags best) in
    (i, fresh, sigma)
  in
  (* initial configuration *)
  let ids0 = Array.map (intern_state interner) c0 in
  if interner.n >= width_limit st.width then upgrade_width st;
  if interner.n >= width_limit st.width then upgrade_width st;
  let initial, _, initial_sigma = intern_canonical ids0 in
  (* chunked frontier expansion *)
  let next = ref 0 in
  let wave = ref 0 in
  let peak_frontier = ref 0 in
  let sids = Array.make (chunk_size * jobs * n) 0 in
  let cur = Array.make n 0 in
  let succ = Array.make n 0 in
  while !next < st.count do
    let lo = !next in
    let hi = min st.count (lo + (chunk_size * jobs)) in
    let len = hi - lo in
    (* phase A: delta evaluation (parallelisable; touches only the state
       interner, under its lock, on memo misses) *)
    let snapshot = (interner.states, interner.n) in
    let run_slice ctx a b =
      ctx.items <- ctx.items + (b - a);
      let c = Array.make n 0 in
      for i = a to b - 1 do
        decode st (lo + i) c;
        let base = i * n in
        for v = 0 to n - 1 do
          sids.(base + v) <- delta_id ctx ~snapshot c v
        done
      done
    in
    if jobs = 1 || len * n < seq_threshold then run_slice ctxs.(0) 0 len
    else begin
      let per = (len + jobs - 1) / jobs in
      let domains =
        List.init (jobs - 1) (fun w ->
            let a = (w + 1) * per in
            let b = min len ((w + 2) * per) in
            Domain.spawn (fun () -> if a < b then run_slice ctxs.(w + 1) a b))
      in
      run_slice ctxs.(0) 0 (min per len);
      List.iter Domain.join domains
    end;
    (* phase B: canonicalise + intern successors, append edges (sequential,
       so configuration ids are deterministic) *)
    if interner.n >= width_limit st.width then upgrade_width st;
    if interner.n >= width_limit st.width then upgrade_width st;
    for i = 0 to len - 1 do
      decode st (lo + i) cur;
      let base = i * n in
      for v = 0 to n - 1 do
        Array.blit cur 0 succ 0 n;
        succ.(v) <- sids.(base + v);
        let j, _, sigma = intern_canonical succ in
        ibuf_push targets j;
        if sym <> None then ibuf_push sigmas sigma
      done
    done;
    incr wave;
    let frontier = st.count - hi in
    if frontier > !peak_frontier then peak_frontier := frontier;
    if T.enabled () then begin
      T.incr c_waves;
      T.observe h_wave len;
      T.emit_value "engine.frontier" frontier;
      T.progress_tick ~label:"explore" ~expanded:hi ~discovered:st.count ~budget:max_configs
        ~wave:!wave ~frontier
    end;
    next := hi
  done;
  let size = st.count in
  let flag_bytes = Buffer.to_bytes st.cflags in
  let acc = Array.init size (fun i -> Char.code (Bytes.get flag_bytes i) land 1 <> 0) in
  let rej = Array.init size (fun i -> Char.code (Bytes.get flag_bytes i) land 2 <> 0) in
  let describe i =
    let ids = Array.make n 0 in
    decode st i ids;
    Format.asprintf "%a"
      (Dda_runtime.Config.pp m.Machine.pp_state)
      (Dda_runtime.Config.of_states (Array.map (fun id -> interner.states.(id)) ids))
  in
  let evals = Array.fold_left (fun a c -> a + c.evals) 0 ctxs in
  let lookups = Array.fold_left (fun a c -> a + c.lookups) 0 ctxs in
  let domain_items = Array.map (fun c -> c.items) ctxs in
  if T.enabled () then begin
    T.add c_configs st.count;
    T.add c_dedup st.dedup_hits;
    T.add c_states interner.n;
    T.add c_memo_misses evals;
    T.add c_memo_hits (lookups - evals);
    T.add c_probes st.probes;
    T.add c_resizes st.resizes;
    T.max_gauge c_peak !peak_frontier;
    Array.iteri
      (fun w items -> T.add (T.counter (Printf.sprintf "engine.domain.%d.items" w)) items)
      domain_items
  end;
  {
    node_count = n;
    size;
    initial;
    initial_sigma;
    targets = ibuf_contents targets;
    sigmas = (if sym = None then [||] else ibuf_contents sigmas);
    acc;
    rej;
    describe;
    symmetry = sym;
    stats =
      {
        state_count = interner.n;
        delta_evals = evals;
        delta_lookups = lookups;
        table_probes = st.probes;
        table_resizes = st.resizes;
        dedup_hits = st.dedup_hits;
        waves = !wave;
        peak_frontier = !peak_frontier;
        domain_items;
      };
  }

(* ------------------------------------------------------------------ *)
(* Accessors                                                            *)
(* ------------------------------------------------------------------ *)

let out_degree e = e.node_count
let target e i k = e.targets.((i * e.node_count) + k)
let edge_sigma e i k = if e.sigmas = [||] then 0 else e.sigmas.((i * e.node_count) + k)

let succs e i =
  List.init e.node_count (fun k -> (k, target e i k))
