(** Strongly connected components (iterative Tarjan).

    The acceptance analyses classify the SCCs of a configuration space:
    bottom SCCs are the possible infinitely-visited sets of pseudo-stochastic
    fair runs, and label-covering SCCs are the possible infinitely-visited
    sets of adversarial fair runs. *)

type result = {
  count : int;  (** Number of components. *)
  component : int array;  (** [component.(v)] is the component of vertex [v]. *)
  members : int list array;  (** Vertices of each component. *)
}

val compute : vertices:int -> succs:(int -> int list) -> result
(** Components are numbered in reverse topological order: every edge goes
    from a component with a {e higher or equal} number to a lower-or-equal
    one (Tarjan numbering), so component 0 has no outgoing edges to other
    components reachable... more precisely, for every edge [u -> v],
    [component.(u) >= component.(v)]. *)

type components = {
  comp_count : int;  (** Number of components. *)
  comp : int array;  (** [comp.(v)] is the component of vertex [v]. *)
}

val compute_iter :
  vertices:int -> degree:(int -> int) -> succ:(int -> int -> int) -> components
(** Allocation-free Tarjan over an indexed successor relation: vertex [v] has
    successors [succ v 0 .. succ v (degree v - 1)].  Same reverse-topological
    component numbering as {!compute} (for every edge [u -> v],
    [comp.(u) >= comp.(v)]), but no member lists are materialised — sized for
    packed spaces with millions of edges. *)

val is_bottom : result -> succs:(int -> int list) -> int -> bool
(** [is_bottom r ~succs c] holds iff no edge leaves component [c]. *)

val has_internal_edge : result -> succs:(int -> int list) -> int -> bool
(** Component [c] contains an edge (it supports a cycle; single vertices with
    a self-loop count). *)

(** {2 Streaming variants}

    Edge-sweep algorithms for external-memory spaces: they only ever visit
    the successor relation in monotone passes over the vertex range, so on
    a spilled CSR each fixpoint sweep faults every segment at most once —
    unlike Tarjan's DFS, whose traversal order is adversarial for an LRU
    of resident segments.  See doc/INTERNALS.md "External-memory
    exploration". *)

val backward_reach :
  vertices:int ->
  degree:(int -> int) ->
  succ:(int -> int -> int) ->
  seed:(int -> bool) ->
  Bytes.t
(** [backward_reach ~vertices ~degree ~succ ~seed] marks (byte ['\001'])
    every vertex from which some vertex satisfying [seed] is reachable
    (seeds included), by alternating forward/backward sweeps to a
    fixpoint. *)

val fair_cycle :
  vertices:int ->
  degree:(int -> int) ->
  succ:(int -> int -> int) ->
  label:(int -> int -> int) ->
  labels:int ->
  target:(int -> bool) ->
  int option
(** [fair_cycle ~vertices ~degree ~succ ~label ~labels ~target] decides
    whether the graph (all vertices assumed reachable) has a cycle that
    carries every edge label in [0 .. labels - 1] ([label v k] is the label
    of edge [k] of [v]) and visits a vertex satisfying [target]; with
    [labels = 0] the label requirement is vacuous and the check is "some
    cycle through a [target] vertex".  Returns a [target] vertex on such a
    cycle, or [None].  Emerson–Lei-style greatest fixpoint; every sweep is
    monotone over the vertex range.
    @raise Invalid_argument when [labels > 61] (label sets are bit masks in
    one OCaml [int]). *)
