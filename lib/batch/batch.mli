(** Sharded batch verification with the persistent verdict cache.

    The runner takes a manifest of jobs — protocol × graph × fairness
    regime, each with a configuration budget — resolves every job's cache
    key ({!Fingerprint}), answers hits from the {!Store}, shards the misses
    round-robin across worker domains, and persists fresh verdicts.  Cache
    lookups and writes happen only on the main domain; workers just
    explore, so the store never sees concurrent writers from one process.

    A job whose exploration exceeds its budget is a {e bounded-out} result
    ([Bounded]), not an error: both [Dda_verify.Space.Too_large] and
    [Dda_wsts.Coverability.Too_large] are converted, cached (a budget
    overflow is as deterministic as a verdict) and reported with exit
    status 1 by the CLI, reserving 2 for real errors. *)

type result_ =
  | Verdict of Dda_verify.Decide.verdict
  | Bounded of int  (** budget exceeded after this many configurations *)

type decision = {
  result : result_;
  cached : bool;  (** answered from the store *)
  configs : int;  (** configurations explored (original run, if cached) *)
  seconds : float;  (** wall-clock of the original computation *)
}

val cache_stats : unit -> int * int
(** Process-global (hits, misses) across all cached calls — independent of
    the telemetry subsystem, so cold/warm experiments can measure hit rates
    with telemetry disabled. *)

val reset_cache_stats : unit -> unit

val cached :
  ?cache:Store.t ->
  ?count:bool ->
  ?engine:string ->
  machine_key:string ->
  graph_key:string ->
  regime:Spec.regime ->
  max_configs:int ->
  (unit -> result_ * int) ->
  decision
(** Generic memoiser: look up the key; on a miss run the thunk (returning
    the result and the number of configurations explored), persist, and
    return.  Without [?cache] the thunk just runs.  [count] (default true)
    controls the telemetry counters [cache.hits]/[cache.misses]/
    [cache.stores] — pass [false] off the main domain.  [engine] (default
    ["explicit"]) salts the cache key and is recorded as the entry's
    provenance; verdicts from different engines never share an entry. *)

val decide :
  ?cache:Store.t ->
  ?count:bool ->
  ?machine_key:string ->
  ?jobs:int ->
  ?symmetry:Dda_verify.Symmetry.t ->
  ?engine:Spec.engine ->
  regime:Spec.regime ->
  max_configs:int ->
  (string, 's) Dda_machine.Machine.t ->
  string Dda_graph.Graph.t ->
  decision
(** Cached exact decision: explore the configuration space and classify by
    the regime (fair-SCC for adversarial, bottom-SCC for
    pseudo-stochastic).  [machine_key] lets callers amortise the machine
    fingerprint across many graphs; it is only computed (or used) when a
    cache is present — the uncached path does no fingerprint work.

    [engine] (default [Explicit]) picks the configuration-space backend:
    [Symbolic] decides over counted configurations (clique/star graphs
    only — [Invalid_argument] otherwise) and [Auto] uses the counted
    engine when the graph is a clique or star, the explicit engine
    otherwise.  Symbolic verdicts are cached under engine-salted keys. *)

(** {1 Family verdicts (symbolic engine)} *)

val decide_family :
  ?cache:Store.t ->
  ?count:bool ->
  ?machine_key:string ->
  regime:Spec.regime ->
  max_configs:int ->
  (string, 's) Dda_machine.Machine.t ->
  Dda_symbolic.Family.t ->
  (decision * Store.family_cert option, string) result
(** Decide a whole graph family ([clique:ab*], [star:ba*]) with the
    symbolic engine and persist the certified verdict as {e one} store
    entry (graph slot = {!Fingerprint.family}).  The certification record
    says from which [n] the verdict holds, how far it was checked, and the
    coverability cutoff when the stratified-star argument applies
    ([cutoff = None] marks an empirical stabilisation window).  [Error]
    carries the reason when the family cannot be stabilised within budget.
    A bounded-out exploration is still [Ok] with a [Bounded] result and no
    certification record. *)

val family_hit :
  cache:Store.t ->
  machine_key:string ->
  regime:Spec.regime ->
  max_configs:int ->
  string ->
  (Store.entry * string) option
(** Answer a {e concrete} clique/star graph spec from its family's cached
    verdict: collapse the spec to its family ({!Spec.family_of_instance}),
    look up the family entry, and return it (with its key) when the
    instance size is within the certified range ([n >= from_n]).  This is
    how one family entry answers every instance-n query — including sizes
    far beyond the explicit engine's reach. *)

(** {1 Manifests and the sharded runner} *)

type job = {
  protocol : string;  (** {!Spec.parse_protocol} syntax *)
  graph : string;
      (** {!Spec.parse_graph_spec} syntax — a concrete graph, or a family
          ([star:ba*]) decided by the symbolic engine *)
  regime : Spec.regime;
  max_configs : int;
}

val manifest_of_string :
  ?default_max_configs:int -> string -> (job list, string) result
(** Parse a manifest document:
    [{"schema":"dda.batch-manifest/1",
      "jobs":[{"protocol":"exists:a","graph":"cycle:abb",
               "regime":"F","max_configs":200000}, ...]}].
    [regime] (default ["F"]) and [max_configs] (default
    [?default_max_configs], 200_000) are optional per job. *)

val manifest_of_file :
  ?default_max_configs:int -> string -> (job list, string) result

type outcome =
  | Done of decision
  | Failed of string  (** unparsable spec or runtime error *)
  | Skipped  (** the shard's time budget ran out before this job *)
  | Interrupted
      (** the run was asked to stop (SIGINT/SIGTERM) before this job ran;
          completed jobs keep their verdicts and the consolidated report is
          still produced *)

type report = {
  jobs : (job * outcome * int) list;  (** in manifest order, with shard id *)
  hits : int;
  misses : int;
  shards : int;
  seconds : float;
}

val run :
  ?cache:Store.t ->
  ?shards:int ->
  ?time_budget:float ->
  ?interrupted:(unit -> bool) ->
  job list ->
  report
(** Execute a manifest.  [shards] (default 1) is the number of worker
    domains for cache misses; [time_budget] bounds each shard's wall-clock
    — jobs not started when it expires are [Skipped].  [interrupted]
    (default [fun () -> false]) is polled between jobs on every shard; once
    it returns [true], jobs not yet started drain as [Interrupted] and the
    runner returns normally with the verdicts completed so far — the CLI
    wires SIGINT/SIGTERM to this and still flushes the report.  Telemetry:
    [batch.jobs], [batch.bounded], [batch.errors], [cache.hits]/[misses]/
    [stores], per-shard [batch.shard.<k>.jobs], spans [batch] and
    [batch.job] (all aggregated on the main domain). *)

val report_json : report -> string
(** Consolidated JSON report (schema [dda.batch/1]). *)

val pp_report : Format.formatter -> report -> unit
(** Human-readable per-job table with a summary line. *)
