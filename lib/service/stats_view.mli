(** Renderers for [dda.stats/1] documents: Prometheus text exposition and
    the one-shot [dda top] dashboard frame.

    Both are pure functions of a parsed {!Dda_telemetry.Json.t} — no
    sockets, no clocks — so [dda stats --prom] and [dda top] are thin
    wrappers ([fetch → parse → render]) and the formats are testable
    without a live server. *)

module Json := Dda_telemetry.Json

val prometheus : Json.t -> (string, string) result
(** Prometheus text exposition (version 0.0.4) of a stats document.
    Every metric is prefixed [dda_] and dots become underscores:

    - [health] → a one-hot [dda_health{state="..."}] gauge vector;
    - [gauges.*] → gauges ([service.uptime_s] → [dda_service_uptime_s]);
    - [windows.*] → summaries with [quantile] labels (0.5/0.95/0.99)
      plus [_rate] and [_max] gauges;
    - [telemetry.counters.*] → counters, suffixed [_total];
    - [telemetry.histograms.*] → histograms with cumulative [le] buckets
      derived from the power-of-two [lt_N] buckets, plus [+Inf], [_sum]
      and [_count];
    - [telemetry.spans.*] → [_calls_total] and [_seconds_total] counters;
    - [telemetry.derived.*] → gauges;
    - [backends] (router documents) → [dda_router_backend_up] plus
      per-backend in-flight/forwarded/ejection series keyed by a
      [backend="addr"] label.

    Label values are escaped per the exposition format (backslash,
    double quote and newline), so hostile state or address strings
    cannot splice extra sample lines into a scrape.  [Error] when the
    document's schema is not [dda.stats/1]. *)

val render_top : ?spark:int list -> Json.t -> string
(** One text frame of the [dda top] dashboard: health and uptime, the
    window's rps and p50/p95/p99/max, queue/in-flight/backlog gauges,
    memory-cache hit rate, per-verb counts, and — when [spark] (a
    most-recent-last queue-depth history) is non-empty — a Unicode
    sparkline.  [dda top] clears the screen and reprints this frame;
    with [--once] (or a non-TTY stdout) it prints exactly one frame. *)
