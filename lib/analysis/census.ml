module M = Dda_multiset.Multiset
module Config = Dda_runtime.Config
module Run = Dda_runtime.Run

type 'a sample = {
  step : int;
  census : 'a M.t;
  verdict : [ `Accepting | `Rejecting | `Mixed ];
}

let snapshot ~project m step c =
  {
    step;
    census = M.of_list (List.map project (Array.to_list (Config.to_array c)));
    verdict = Config.verdict m c;
  }

let collect ~project ~every ~max_steps m g sched =
  if every < 1 then invalid_arg "Census.collect: sampling period must be >= 1";
  let samples = ref [ snapshot ~project m 0 (Config.initial m g) ] in
  let on_step ~step ~selection:_ ~before:_ ~after =
    if (step + 1) mod every = 0 then samples := snapshot ~project m (step + 1) after :: !samples
  in
  let r = Run.simulate ~on_step ~max_steps m g sched in
  let last = snapshot ~project m r.Run.steps_taken r.Run.final in
  let rest = match !samples with s :: _ when s.step = last.step -> !samples | l -> last :: l in
  List.rev rest

let rising_edges ~present samples =
  let active s = List.exists (fun (a, _) -> present a) (M.to_counts s.census) in
  let rec go prev = function
    | [] -> 0
    | s :: rest ->
      let now = active s in
      (if now && not prev then 1 else 0) + go now rest
  in
  match samples with [] -> 0 | s :: rest -> go (active s) rest

let settled_verdict = function
  | [] -> `Mixed
  | samples -> (List.nth samples (List.length samples - 1)).verdict

let pp_series pp_a fmt samples =
  List.iter
    (fun s ->
      Format.fprintf fmt "%8d  %a  %s@." s.step (M.pp pp_a) s.census
        (match s.verdict with `Accepting -> "acc" | `Rejecting -> "rej" | `Mixed -> "mix"))
    samples

let distinct_states m g sched ~max_steps =
  let seen = Hashtbl.create 256 in
  let record c = Array.iter (fun s -> Hashtbl.replace seen s ()) (Config.to_array c) in
  record (Config.initial m g);
  let on_step ~step:_ ~selection:_ ~before:_ ~after = record after in
  ignore (Run.simulate ~on_step ~max_steps m g sched);
  Hashtbl.length seen
