module Graph = Dda_graph.Graph
module Machine = Dda_machine.Machine
module Neighbourhood = Dda_machine.Neighbourhood
module Multiset = Dda_multiset.Multiset
module Listx = Dda_util.Listx
module T = Dda_telemetry.Telemetry

type kind = Explicit | Counted

type backend = Generic | Packed of Engine.t

type t = {
  kind : kind;
  node_count : int;
  size : int;
  initial : int;
  succs : int -> (int * int) list;
  accepting : int -> bool;
  rejecting : int -> bool;
  describe : int -> string;
  backend : backend;
}

exception Too_large of int

let engine space = match space.backend with Packed e -> Some e | Generic -> None
let is_reduced space = match space.backend with Packed e -> Engine.reduced e | Generic -> false

(* Generic worklist exploration over an abstract configuration type ['c].
   [expand c] lists (label, successor) pairs. *)
let explore_generic ~max_configs ~initial ~expand =
  let index = Hashtbl.create 1024 in
  let configs = ref [] (* reversed *) in
  let count = ref 0 in
  let intern c =
    match Hashtbl.find_opt index c with
    | Some i -> (i, false)
    | None ->
      if !count >= max_configs then raise (Too_large !count);
      let i = !count in
      Hashtbl.add index c i;
      configs := c :: !configs;
      incr count;
      (i, true)
  in
  let i0, _ = intern initial in
  let edges = ref [] (* reversed list of (label, j) list, per config index *) in
  let queue = Queue.create () in
  Queue.add initial queue;
  let processed = ref 0 in
  while not (Queue.is_empty queue) do
    let c = Queue.pop queue in
    let out =
      List.map
        (fun (label, c') ->
          let j, fresh = intern c' in
          if fresh then Queue.add c' queue;
          (label, j))
        (expand c)
    in
    edges := out :: !edges;
    incr processed
  done;
  let config_arr = Array.of_list (List.rev !configs) in
  let edge_arr = Array.of_list (List.rev !edges) in
  assert (Array.length config_arr = Array.length edge_arr);
  (config_arr, edge_arr, i0)

let explore_custom ~max_configs ~kind ~node_count ~initial ~expand ~accepting ~rejecting
    ~describe =
  let configs, edges, i0 = explore_generic ~max_configs ~initial ~expand in
  {
    kind;
    node_count;
    size = Array.length configs;
    initial = i0;
    succs = (fun i -> edges.(i));
    accepting = (fun i -> accepting configs.(i));
    rejecting = (fun i -> rejecting configs.(i));
    describe = (fun i -> describe configs.(i));
    backend = Generic;
  }

(* The pre-engine explicit explorer, kept verbatim: the differential tests
   check the packed engine against it, and it accepts machines whose states
   are any structurally-hashable value without interning overhead. *)
let explore_legacy ~max_configs m g =
  let n = Graph.nodes g in
  let expand c =
    List.map
      (fun v ->
        let c' = Dda_runtime.Config.step m g (Dda_runtime.Config.of_states c) [ v ] in
        (v, Dda_runtime.Config.to_array c'))
      (Listx.range n)
  in
  let initial = Dda_runtime.Config.to_array (Dda_runtime.Config.initial m g) in
  let configs, edges, i0 = explore_generic ~max_configs ~initial ~expand in
  let all p i = Array.for_all p configs.(i) in
  {
    kind = Explicit;
    node_count = n;
    size = Array.length configs;
    initial = i0;
    succs = (fun i -> edges.(i));
    accepting = (fun i -> all m.Machine.accepting i);
    rejecting = (fun i -> all m.Machine.rejecting i);
    describe =
      (fun i ->
        Format.asprintf "%a" (Dda_runtime.Config.pp m.Machine.pp_state)
          (Dda_runtime.Config.of_states configs.(i)));
    backend = Generic;
  }

let explore ?jobs ?symmetry ?states ?mem_budget ~max_configs m g =
  let e =
    try
      T.with_span
        ~args:[ ("nodes", T.I (Graph.nodes g)); ("max_configs", T.I max_configs) ]
        "explore"
        (fun () -> Engine.explore ?jobs ?symmetry ?states ?mem_budget ~max_configs m g)
    with Engine.Too_large n -> raise (Too_large n)
  in
  {
    kind = Explicit;
    node_count = e.Engine.node_count;
    size = e.Engine.size;
    initial = e.Engine.initial;
    succs = Engine.succs e;
    accepting = (fun i -> Engine.acc e i);
    rejecting = (fun i -> Engine.rej e i);
    describe = e.Engine.describe;
    backend = Packed e;
  }

let explore_liberal ~max_configs m g =
  let n = Graph.nodes g in
  if n > 16 then invalid_arg "Space.explore_liberal: exponential branching, 16 nodes max";
  (* every non-empty subset of nodes, as a bitmask; the mask doubles as the
     edge label so schedules are replayable *)
  let subsets =
    List.init ((1 lsl n) - 1) (fun k ->
        let mask = k + 1 in
        (mask, List.filter (fun v -> mask land (1 lsl v) <> 0) (Listx.range n)))
  in
  let expand c =
    List.map
      (fun (mask, sel) ->
        let c' = Dda_runtime.Config.step m g (Dda_runtime.Config.of_states c) sel in
        (mask, Dda_runtime.Config.to_array c'))
      subsets
  in
  let initial = Dda_runtime.Config.to_array (Dda_runtime.Config.initial m g) in
  let configs, edges, i0 = explore_generic ~max_configs ~initial ~expand in
  let all p i = Array.for_all p configs.(i) in
  {
    kind = Counted;
    node_count = n;
    size = Array.length configs;
    initial = i0;
    succs = (fun i -> edges.(i));
    accepting = (fun i -> all m.Machine.accepting i);
    rejecting = (fun i -> all m.Machine.rejecting i);
    describe =
      (fun i ->
        Format.asprintf "%a" (Dda_runtime.Config.pp m.Machine.pp_state)
          (Dda_runtime.Config.of_states configs.(i)));
    backend = Generic;
  }

(* Escape a node label for dot: backslash-escape quotes and backslashes. *)
let dot_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      (match ch with '"' | '\\' -> Buffer.add_char b '\\' | _ -> ());
      Buffer.add_char b ch)
    s;
  Buffer.contents b

let to_dot ?(max_size = 200) fmt space =
  if space.size > max_size then
    invalid_arg "Space.to_dot: configuration graph too large to render";
  Format.fprintf fmt "@[<v>digraph space {@,  rankdir=LR;@,";
  for i = 0 to space.size - 1 do
    let shape =
      if space.accepting i then "doublecircle" else if space.rejecting i then "box" else "ellipse"
    in
    Format.fprintf fmt "  c%d [shape=%s,label=\"%s\"%s];@," i shape
      (dot_escape (space.describe i))
      (if i = space.initial then ",style=bold" else "")
  done;
  for i = 0 to space.size - 1 do
    List.iter
      (fun (label, j) ->
        if i <> j || space.kind = Explicit then
          Format.fprintf fmt "  c%d -> c%d%s;@," i j
            (if space.kind = Explicit then Printf.sprintf " [label=\"%d\"]" label else ""))
      (space.succs i)
  done;
  Format.fprintf fmt "}@]"

let shortest_path space ~goal =
  let n = space.size in
  let parent = Array.make n None in
  let seen = Array.make n false in
  let queue = Queue.create () in
  seen.(space.initial) <- true;
  Queue.add space.initial queue;
  let found = ref None in
  while !found = None && not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    if goal i then found := Some i
    else
      List.iter
        (fun (label, j) ->
          if not seen.(j) then begin
            seen.(j) <- true;
            parent.(j) <- Some (i, label);
            Queue.add j queue
          end)
        (space.succs i)
  done;
  match !found with
  | None -> None
  | Some target ->
    let rec unwind i acc =
      match parent.(i) with None -> acc | Some (p, label) -> unwind p (label :: acc)
    in
    Some (unwind target [], target)

(* Counted clique: a configuration is the multiset of states.  A step picks
   one agent in state [q]; it observes every other agent, i.e. the multiset
   minus one occurrence of [q], capped at β. *)
let explore_clique ~max_configs m label_count =
  let n = Multiset.size label_count in
  if n < 2 then invalid_arg "Space.explore_clique: need at least two nodes";
  let initial = Multiset.map m.Machine.init label_count in
  let neighbourhood_of counts q =
    List.map (fun (s, c) -> (s, min c m.Machine.beta)) (Multiset.to_counts (Multiset.remove q counts))
  in
  let expand counts =
    List.map
      (fun (q, _) ->
        let q' = m.Machine.delta q (neighbourhood_of counts q) in
        (0, Multiset.add q' (Multiset.remove q counts)))
      (Multiset.to_counts counts)
  in
  let configs, edges, i0 = explore_generic ~max_configs ~initial ~expand in
  let all p i = List.for_all (fun (s, _) -> p s) (Multiset.to_counts configs.(i)) in
  {
    kind = Counted;
    node_count = n;
    size = Array.length configs;
    initial = i0;
    succs = (fun i -> edges.(i));
    accepting = (fun i -> all m.Machine.accepting i);
    rejecting = (fun i -> all m.Machine.rejecting i);
    describe = (fun i -> Format.asprintf "%a" (Multiset.pp m.Machine.pp_state) configs.(i));
    backend = Generic;
  }

(* Counted star: (centre state, leaf state count).  The centre observes the
   capped leaf counts; a leaf observes only the centre. *)
let explore_star ~max_configs m ~centre ~leaves =
  let n = 1 + Multiset.size leaves in
  let initial = (m.Machine.init centre, Multiset.map m.Machine.init leaves) in
  let expand (ctr, counts) =
    let centre_nbh =
      List.map (fun (s, c) -> (s, min c m.Machine.beta)) (Multiset.to_counts counts)
    in
    let centre_move = (0, (m.Machine.delta ctr centre_nbh, counts)) in
    let leaf_moves =
      List.map
        (fun (q, _) ->
          let q' = m.Machine.delta q [ (ctr, 1) ] in
          (0, (ctr, Multiset.add q' (Multiset.remove q counts))))
        (Multiset.to_counts counts)
    in
    centre_move :: leaf_moves
  in
  let configs, edges, i0 = explore_generic ~max_configs ~initial ~expand in
  let all p i =
    let ctr, counts = configs.(i) in
    p ctr && List.for_all (fun (s, _) -> p s) (Multiset.to_counts counts)
  in
  {
    kind = Counted;
    node_count = n;
    size = Array.length configs;
    initial = i0;
    succs = (fun i -> edges.(i));
    accepting = (fun i -> all m.Machine.accepting i);
    rejecting = (fun i -> all m.Machine.rejecting i);
    describe =
      (fun i ->
        let ctr, counts = configs.(i) in
        Format.asprintf "ctr=%a leaves=%a" m.Machine.pp_state ctr
          (Multiset.pp m.Machine.pp_state) counts);
    backend = Generic;
  }
