(** Small list and array helpers used across the library. *)

val range : int -> int list
(** [range n] is [\[0; 1; ...; n-1\]]. *)

val range_in : int -> int -> int list
(** [range_in lo hi] is [\[lo; ...; hi\]] (inclusive); empty if [hi < lo]. *)

val sum : int list -> int

val max_by : ('a -> int) -> 'a list -> 'a
(** Maximum element under a score.  @raise Invalid_argument on []. *)

val cartesian : 'a list -> 'b list -> ('a * 'b) list

val cartesian_n : 'a list list -> 'a list list
(** [cartesian_n \[l1; ...; lk\]] enumerates all tuples, as lists of length k,
    taking one element from each [li], in lexicographic order. *)

val dedup_sorted : ('a -> 'a -> int) -> 'a list -> 'a list
(** Sort with [cmp] and remove duplicates. *)

val group_counts : ('a -> 'a -> int) -> 'a list -> ('a * int) list
(** [group_counts cmp l] sorts [l] and returns each distinct element with its
    multiplicity, in [cmp] order. *)

val take : int -> 'a list -> 'a list
val drop : int -> 'a list -> 'a list

val find_index_opt : ('a -> bool) -> 'a list -> int option

val assoc_update : 'a -> ('b -> 'b) -> 'b -> ('a * 'b) list -> ('a * 'b) list
(** [assoc_update k f dflt l] applies [f] to the binding of [k] (inserting
    [f dflt] if absent), preserving the order of existing bindings. *)

val pp_list :
  ?sep:string -> (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a list -> unit
(** Print a list with separator (default ["; "]) and no brackets. *)
