module Machine = Dda_machine.Machine
module Graph = Dda_graph.Graph
module Space = Dda_verify.Space
module Decide = Dda_verify.Decide
module Json = Dda_telemetry.Json
module T = Dda_telemetry.Telemetry

let c_hits = T.counter "cache.hits"
let c_misses = T.counter "cache.misses"
let c_stores = T.counter "cache.stores"
let c_jobs = T.counter "batch.jobs"
let c_bounded = T.counter "batch.bounded"
let c_errors = T.counter "batch.errors"

type result_ =
  | Verdict of Decide.verdict
  | Bounded of int

type decision = {
  result : result_;
  cached : bool;
  configs : int;
  seconds : float;
}

(* Plain process-global tallies, deliberately outside the telemetry gate:
   the cold/warm benchmark measures hit rates with telemetry disabled.
   Only the main domain touches the cache, so plain ints suffice. *)
let g_hits = ref 0
let g_misses = ref 0

let cache_stats () = (!g_hits, !g_misses)

let reset_cache_stats () =
  g_hits := 0;
  g_misses := 0

let note_hit count =
  incr g_hits;
  if count then T.incr c_hits

let note_miss count =
  incr g_misses;
  if count then T.incr c_misses

let result_of_verdict = function
  | Store.Accepts -> Verdict Decide.Accepts
  | Store.Rejects -> Verdict Decide.Rejects
  | Store.Inconsistent w -> Verdict (Decide.Inconsistent w)
  | Store.Bounded n -> Bounded n

let verdict_of_result = function
  | Verdict Decide.Accepts -> Store.Accepts
  | Verdict Decide.Rejects -> Store.Rejects
  | Verdict (Decide.Inconsistent w) -> Store.Inconsistent w
  | Bounded n -> Store.Bounded n

let time thunk =
  let t0 = Unix.gettimeofday () in
  let result, configs = thunk () in
  { result; cached = false; configs; seconds = Unix.gettimeofday () -. t0 }

let store_decision ?(count = true) ?(engine = "explicit") ?family cache ~key
    ~machine_key ~graph_key ~regime ~max_configs d =
  Store.put cache
    {
      Store.key;
      machine = machine_key;
      graph = graph_key;
      regime = Spec.regime_name regime;
      max_configs;
      verdict = verdict_of_result d.result;
      configs = d.configs;
      seconds = d.seconds;
      engine;
      family;
    };
  if count then T.incr c_stores

let cached ?cache ?(count = true) ?(engine = "explicit") ~machine_key ~graph_key
    ~regime ~max_configs thunk =
  match cache with
  | None -> time thunk
  | Some store -> (
    let key =
      Fingerprint.key ~engine ~machine:machine_key ~graph:graph_key
        ~regime:(Spec.regime_name regime) ~max_configs ()
    in
    match Store.find store key with
    | Some e ->
      note_hit count;
      {
        result = result_of_verdict e.Store.verdict;
        cached = true;
        configs = e.Store.configs;
        seconds = e.Store.seconds;
      }
    | None ->
      note_miss count;
      let d = time thunk in
      store_decision ~count ~engine store ~key ~machine_key ~graph_key ~regime
        ~max_configs d;
      d)

let classify regime space =
  match (regime : Spec.regime) with
  | Spec.Adversarial -> Decide.adversarial space
  | Spec.Pseudo_stochastic -> Decide.pseudo_stochastic space

let explore_and_classify ?jobs ?symmetry ~regime ~max_configs m g () =
  match Space.explore ?jobs ?symmetry ~max_configs m g with
  | exception Space.Too_large n -> (Bounded n, n)
  | exception Dda_wsts.Coverability.Too_large n -> (Bounded n, n)
  | space -> (Verdict (classify regime space), space.Space.size)

let counted_regime = function
  | Spec.Adversarial -> `Adversarial
  | Spec.Pseudo_stochastic -> `Pseudo_stochastic

let explore_and_classify_counted ~regime ~max_configs m shape () =
  match Dda_symbolic.Counted.of_shape ~max_configs m shape with
  | exception Dda_symbolic.Counted.Too_large n -> (Bounded n, n)
  | space ->
    ( Verdict (Dda_symbolic.Analysis.for_regime (counted_regime regime) space),
      space.Dda_symbolic.Counted.size )

let decide ?cache ?count ?machine_key ?jobs ?symmetry ?(engine = Spec.Explicit)
    ~regime ~max_configs m g =
  (* the symbolic engine only has counted semantics for cliques and stars;
     Auto falls back to the explicit engine elsewhere *)
  let shape =
    match engine with
    | Spec.Explicit -> None
    | Spec.Symbolic | Spec.Auto -> Dda_symbolic.Counted.shape_of_graph g
  in
  (match (engine, shape) with
  | Spec.Symbolic, None ->
    invalid_arg "Batch.decide: the symbolic engine needs a clique or star graph"
  | _ -> ());
  let engine_used, thunk =
    match shape with
    | Some shape ->
      ("symbolic", explore_and_classify_counted ~regime ~max_configs m shape)
    | None -> ("explicit", explore_and_classify ?jobs ?symmetry ~regime ~max_configs m g)
  in
  match cache with
  | None -> time thunk (* no fingerprint work on the uncached path *)
  | Some _ ->
    let machine_key =
      match machine_key with
      | Some k -> k
      | None -> Fingerprint.machine ~labels:(Spec.alphabet_of g) m
    in
    cached ?cache ?count ~engine:engine_used ~machine_key
      ~graph_key:(Fingerprint.graph g) ~regime ~max_configs thunk

(* --- Family verdicts --------------------------------------------------------- *)

let cert_of_family (fv : Dda_symbolic.Certify.t) =
  {
    Store.from_n = fv.Dda_symbolic.Certify.from_n;
    checked_to = fv.Dda_symbolic.Certify.checked_to;
    cutoff =
      (match fv.Dda_symbolic.Certify.certificate with
      | Dda_symbolic.Certify.Cutoff k -> Some k
      | Dda_symbolic.Certify.Window _ -> None);
  }

let family_key ~machine_key ~regime ~max_configs fam =
  Fingerprint.key ~engine:"symbolic" ~machine:machine_key
    ~graph:(Fingerprint.family fam) ~regime:(Spec.regime_name regime)
    ~max_configs ()

let decide_family ?cache ?(count = true) ?machine_key ~regime ~max_configs m fam
    =
  let compute () =
    match
      Dda_symbolic.Certify.decide_family ~max_configs
        ~regime:(counted_regime regime) m fam
    with
    | Ok fv ->
      Ok
        ( time (fun () -> (Verdict fv.Dda_symbolic.Certify.verdict, fv.Dda_symbolic.Certify.configs)),
          Some (cert_of_family fv) )
    | Error (`Too_large n) -> Ok (time (fun () -> (Bounded n, n)), None)
    | Error (`Unsupported msg) -> Error msg
  in
  match cache with
  | None ->
    let t0 = Unix.gettimeofday () in
    Result.map
      (fun (d, cert) -> ({ d with seconds = Unix.gettimeofday () -. t0 }, cert))
      (compute ())
  | Some store -> (
    let machine_key =
      match machine_key with
      | Some k -> k
      | None ->
        Fingerprint.machine ~labels:(Dda_symbolic.Family.alphabet fam) m
    in
    let key = family_key ~machine_key ~regime ~max_configs fam in
    match Store.find store key with
    | Some e ->
      note_hit count;
      Ok
        ( {
            result = result_of_verdict e.Store.verdict;
            cached = true;
            configs = e.Store.configs;
            seconds = e.Store.seconds;
          },
          e.Store.family )
    | None ->
      note_miss count;
      let t0 = Unix.gettimeofday () in
      Result.map
        (fun (d, cert) ->
          let d = { d with seconds = Unix.gettimeofday () -. t0 } in
          store_decision ~count ~engine:"symbolic" ?family:cert store ~key
            ~machine_key ~graph_key:(Fingerprint.family fam) ~regime ~max_configs
            d;
          (d, cert))
        (compute ()))

let family_hit ~cache ~machine_key ~regime ~max_configs graph_spec =
  match Spec.family_of_instance graph_spec with
  | None -> None
  | Some (fam, n) -> (
    let key = family_key ~machine_key ~regime ~max_configs fam in
    match Store.find cache key with
    | Some ({ Store.family = Some fc; _ } as e) when n >= fc.Store.from_n ->
      Some (e, key)
    | Some _ | None -> None)

(* --- Manifests -------------------------------------------------------------- *)

type job = {
  protocol : string;
  graph : string;
  regime : Spec.regime;
  max_configs : int;
}

let manifest_schema = "dda.batch-manifest/1"

let manifest_of_string ?(default_max_configs = 200_000) contents =
  let ( let* ) = Result.bind in
  let* doc =
    match Json.parse contents with Ok d -> Ok d | Error e -> Error ("manifest: " ^ e)
  in
  let* () =
    match Json.member "schema" doc with
    | Some (Json.Str s) when s = manifest_schema -> Ok ()
    | Some (Json.Str s) -> Error (Printf.sprintf "manifest: unknown schema %S" s)
    | _ -> Error (Printf.sprintf "manifest: missing \"schema\" (expected %S)" manifest_schema)
  in
  let* jobs =
    match Json.member "jobs" doc with
    | Some (Json.Arr jobs) -> Ok jobs
    | _ -> Error "manifest: missing array \"jobs\""
  in
  let parse_job i j =
    let str field =
      match Json.member field j with
      | Some (Json.Str s) -> Ok s
      | Some _ -> Error (Printf.sprintf "manifest job %d: %S is not a string" i field)
      | None -> Error (Printf.sprintf "manifest job %d: missing %S" i field)
    in
    let* protocol = str "protocol" in
    let* graph = str "graph" in
    let* regime =
      match Json.member "regime" j with
      | None -> Ok Spec.Pseudo_stochastic
      | Some (Json.Str s) -> (
        match Spec.parse_regime s with
        | Ok r -> Ok r
        | Error e -> Error (Printf.sprintf "manifest job %d: %s" i e))
      | Some _ -> Error (Printf.sprintf "manifest job %d: \"regime\" is not a string" i)
    in
    let* max_configs =
      match Json.member "max_configs" j with
      | None -> Ok default_max_configs
      | Some (Json.Num f) when Float.is_integer f && f >= 1. -> Ok (int_of_float f)
      | Some _ -> Error (Printf.sprintf "manifest job %d: \"max_configs\" is not a positive integer" i)
    in
    Ok { protocol; graph; regime; max_configs }
  in
  let rec go i acc = function
    | [] -> Ok (List.rev acc)
    | j :: rest ->
      let* job = parse_job i j in
      go (i + 1) (job :: acc) rest
  in
  go 0 [] jobs

let manifest_of_file ?default_max_configs path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error e -> Error e
  | contents -> manifest_of_string ?default_max_configs contents

(* --- The sharded runner ----------------------------------------------------- *)

type outcome =
  | Done of decision
  | Failed of string
  | Skipped
  | Interrupted

type report = {
  jobs : (job * outcome * int) list;
  hits : int;
  misses : int;
  shards : int;
  seconds : float;
}

type resolved = {
  r_compute : unit -> result_ * int;
  r_key : string;  (* "" when running uncached *)
  r_machine : string;
  r_graph : string;
  r_engine : string;
  (* filled by family compute thunks on the worker domain; Domain.join
     publishes it before the main domain reads it back *)
  r_family : Store.family_cert option ref;
}

let machine_fp memo ~protocol ~alphabet m =
  let mkey = (protocol, alphabet) in
  match Hashtbl.find_opt memo mkey with
  | Some fp -> fp
  | None ->
    let fp = Fingerprint.machine ~labels:alphabet m in
    Hashtbl.add memo mkey fp;
    fp

let resolve ?cache memo job =
  let ( let* ) = Result.bind in
  let* gspec = Spec.parse_graph_spec job.graph in
  match gspec with
  | Spec.Concrete g -> (
    let* (Spec.Packed m) = Spec.parse_protocol job.protocol g in
    let r_compute =
      explore_and_classify ~regime:job.regime ~max_configs:job.max_configs m g
    in
    let r_family = ref None in
    match cache with
    | None ->
      Ok
        {
          r_compute;
          r_key = "";
          r_machine = "";
          r_graph = "";
          r_engine = "explicit";
          r_family;
        }
    | Some _ ->
      (* one machine fingerprint per (protocol, alphabet) pair, not per job *)
      let alphabet = Spec.alphabet_of g in
      let r_machine = machine_fp memo ~protocol:job.protocol ~alphabet m in
      let r_graph = Fingerprint.graph g in
      let r_key =
        Fingerprint.key ~machine:r_machine ~graph:r_graph
          ~regime:(Spec.regime_name job.regime) ~max_configs:job.max_configs ()
      in
      Ok { r_compute; r_key; r_machine; r_graph; r_engine = "explicit"; r_family })
  | Spec.Family fam ->
    let rep = Spec.family_representative fam in
    let* (Spec.Packed m) = Spec.parse_protocol job.protocol rep in
    let r_family = ref None in
    let r_compute () =
      match
        Dda_symbolic.Certify.decide_family ~max_configs:job.max_configs
          ~regime:(counted_regime job.regime) m fam
      with
      | Ok fv ->
        r_family := Some (cert_of_family fv);
        (Verdict fv.Dda_symbolic.Certify.verdict, fv.Dda_symbolic.Certify.configs)
      | Error (`Too_large n) -> (Bounded n, n)
      | Error (`Unsupported msg) -> failwith msg
    in
    if cache = None then
      Ok
        {
          r_compute;
          r_key = "";
          r_machine = "";
          r_graph = "";
          r_engine = "symbolic";
          r_family;
        }
    else
      let alphabet = Dda_symbolic.Family.alphabet fam in
      let r_machine = machine_fp memo ~protocol:job.protocol ~alphabet m in
      let r_graph = Fingerprint.family fam in
      let r_key =
        family_key ~machine_key:r_machine ~regime:job.regime
          ~max_configs:job.max_configs fam
      in
      Ok { r_compute; r_key; r_machine; r_graph; r_engine = "symbolic"; r_family }

(* Execute a shard's share of the cache misses.  Runs on a worker domain:
   no cache access, no telemetry counters — only the spans inside the
   exploration engine, which are domain-safe. *)
let exec_shard ?time_budget ~interrupted items =
  let t0 = Unix.gettimeofday () in
  List.map
    (fun (idx, r) ->
      let over_budget =
        match time_budget with
        | Some b -> Unix.gettimeofday () -. t0 > b
        | None -> false
      in
      if interrupted () then (idx, `Interrupted)
      else if over_budget then (idx, `Skipped)
      else
        match time r.r_compute with
        | d -> (idx, `Computed d)
        | exception e -> (idx, `Failed (Printexc.to_string e)))
    items

let run ?cache ?(shards = 1) ?time_budget ?(interrupted = fun () -> false) jobs =
  let shards = max 1 shards in
  let t0 = Unix.gettimeofday () in
  let memo = Hashtbl.create 16 in
  let n = List.length jobs in
  let outcomes = Array.make n Skipped in
  let shard_of = Array.make n (-1) in
  (* resolve and answer hits on the main domain; collect the misses *)
  let misses = ref [] in
  let resolved = Array.make n None in
  List.iteri
    (fun idx job ->
      match resolve ?cache memo job with
      | Error msg -> outcomes.(idx) <- Failed msg
      | Ok r -> (
        resolved.(idx) <- Some r;
        let direct =
          Option.bind cache (fun store -> Store.find store r.r_key)
        in
        (* on an exact miss, an instance of a certified family may still be
           answered by the family's single store entry *)
        let hit =
          match (direct, cache) with
          | (Some _ as h), _ -> h
          | None, Some store ->
            Option.map fst
              (family_hit ~cache:store ~machine_key:r.r_machine
                 ~regime:job.regime ~max_configs:job.max_configs job.graph)
          | None, None -> None
        in
        match hit with
        | Some e ->
          note_hit true;
          outcomes.(idx) <-
            Done
              {
                result = result_of_verdict e.Store.verdict;
                cached = true;
                configs = e.Store.configs;
                seconds = e.Store.seconds;
              }
        | None ->
          if cache <> None then note_miss true;
          misses := (idx, r) :: !misses))
    jobs;
  let misses = List.rev !misses in
  (* round-robin static partition across the shards *)
  let buckets = Array.make shards [] in
  List.iteri (fun pos (idx, r) -> buckets.(pos mod shards) <- (idx, r) :: buckets.(pos mod shards)) misses;
  let buckets = Array.map List.rev buckets in
  Array.iteri (fun k items -> List.iter (fun (idx, _) -> shard_of.(idx) <- k) items) buckets;
  let results =
    T.with_span "batch" (fun () ->
        if shards = 1 then [| exec_shard ?time_budget ~interrupted buckets.(0) |]
        else
          Array.map Domain.join
            (Array.map
               (fun items -> Domain.spawn (fun () -> exec_shard ?time_budget ~interrupted items))
               buckets))
  in
  (* fold the worker results back in and persist fresh verdicts (main domain
     only: the store never sees concurrent writers from this process) *)
  Array.iter
    (List.iter (fun (idx, outcome) ->
         match outcome with
         | `Skipped -> outcomes.(idx) <- Skipped
         | `Interrupted -> outcomes.(idx) <- Interrupted
         | `Failed msg -> outcomes.(idx) <- Failed msg
         | `Computed d ->
           outcomes.(idx) <- Done d;
           (match (cache, resolved.(idx)) with
           | Some store, Some r ->
             let job = List.nth jobs idx in
             store_decision ~engine:r.r_engine ?family:!(r.r_family) store
               ~key:r.r_key ~machine_key:r.r_machine ~graph_key:r.r_graph
               ~regime:job.regime ~max_configs:job.max_configs d
           | _ -> ())))
    results;
  (* telemetry aggregation, all on the main domain *)
  if T.enabled () then begin
    T.add c_jobs n;
    Array.iter
      (fun o ->
        match o with
        | Done { result = Bounded _; _ } -> T.incr c_bounded
        | Failed _ -> T.incr c_errors
        | _ -> ())
      outcomes;
    Array.iteri
      (fun k items ->
        if items <> [] then
          T.add (T.counter (Printf.sprintf "batch.shard.%d.jobs" k)) (List.length items))
      buckets
  end;
  let hits, misses_n =
    Array.fold_left
      (fun (h, m) o ->
        match o with
        | Done { cached = true; _ } -> (h + 1, m)
        | Done _ -> (h, m + 1)
        | _ -> (h, m))
      (0, 0) outcomes
  in
  {
    jobs = List.mapi (fun idx job -> (job, outcomes.(idx), shard_of.(idx))) jobs;
    hits;
    misses = misses_n;
    shards;
    seconds = Unix.gettimeofday () -. t0;
  }

(* --- Reports ---------------------------------------------------------------- *)

let result_strings = function
  | Verdict Decide.Accepts -> ("ok", "accepts")
  | Verdict Decide.Rejects -> ("ok", "rejects")
  | Verdict (Decide.Inconsistent _) -> ("ok", "inconsistent")
  | Bounded _ -> ("bounded", "bounded")

let report_json r =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n  \"schema\": \"dda.batch/1\",\n";
  Buffer.add_string b (Printf.sprintf "  \"shards\": %d,\n" r.shards);
  Buffer.add_string b (Printf.sprintf "  \"seconds\": %.6f,\n" r.seconds);
  Buffer.add_string b
    (Printf.sprintf "  \"cache\": {\"hits\": %d, \"misses\": %d},\n" r.hits r.misses);
  Buffer.add_string b "  \"jobs\": [";
  List.iteri
    (fun i (job, outcome, shard) ->
      Buffer.add_string b (if i > 0 then ",\n    {" else "\n    {");
      Buffer.add_string b
        (Printf.sprintf "\"protocol\": \"%s\", \"graph\": \"%s\", \"regime\": \"%s\", \"max_configs\": %d"
           (Json.escape job.protocol) (Json.escape job.graph)
           (Spec.regime_name job.regime) job.max_configs);
      (match outcome with
      | Done d ->
        let status, verdict = result_strings d.result in
        Buffer.add_string b
          (Printf.sprintf
             ", \"status\": \"%s\", \"verdict\": \"%s\", \"cached\": %b, \"configs\": %d, \"seconds\": %.6f"
             status verdict d.cached d.configs d.seconds)
      | Failed msg ->
        Buffer.add_string b (Printf.sprintf ", \"status\": \"failed\", \"error\": \"%s\"" (Json.escape msg))
      | Skipped -> Buffer.add_string b ", \"status\": \"skipped\""
      | Interrupted -> Buffer.add_string b ", \"status\": \"interrupted\"");
      if shard >= 0 then Buffer.add_string b (Printf.sprintf ", \"shard\": %d" shard);
      Buffer.add_char b '}')
    r.jobs;
  Buffer.add_string b (if r.jobs = [] then "]\n}\n" else "\n  ]\n}\n");
  Buffer.contents b

let pp_report fmt r =
  List.iter
    (fun (job, outcome, shard) ->
      let detail =
        match outcome with
        | Done d ->
          let _, verdict = result_strings d.result in
          Printf.sprintf "%-12s %s(%d configs, %.3fs)" verdict
            (if d.cached then "cached " else "")
            d.configs d.seconds
        | Failed msg -> "FAILED: " ^ msg
        | Skipped -> "skipped (time budget)"
        | Interrupted -> "interrupted (signal)"
      in
      Format.fprintf fmt "%-28s %-16s %s  %s%s@." job.protocol job.graph
        (Spec.regime_name job.regime) detail
        (if shard >= 0 then Printf.sprintf "  [shard %d]" shard else ""))
    r.jobs;
  Format.fprintf fmt "%d jobs, %d cache hits, %d computed, %d shards, %.3fs@."
    (List.length r.jobs) r.hits r.misses r.shards r.seconds
