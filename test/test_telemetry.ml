(* Telemetry subsystem tests (lib/telemetry).

   Ordering constraint: [Telemetry.enable] is write-once per process, so
   every disabled-mode assertion (zero recording, zero allocation) runs in
   the suites listed BEFORE the "enabled" suite below — alcotest executes
   suites and cases in declaration order. *)

module T = Dda_telemetry.Telemetry
module Json = Dda_telemetry.Json
module Scheduler = Dda_scheduler.Scheduler
module Space = Dda_verify.Space
module Decide = Dda_verify.Decide
module G = Dda_graph.Graph
module H = Dda_protocols.Homogeneous

(* ------------------------------------------------------------------ *)
(* Strict JSON parser                                                   *)
(* ------------------------------------------------------------------ *)

let ok src =
  match Json.parse src with
  | Ok v -> v
  | Error e -> Alcotest.failf "expected %S to parse, got: %s" src e

let rejects src =
  match Json.parse src with
  | Ok _ -> Alcotest.failf "expected %S to be rejected" src
  | Error _ -> ()

let test_json_accepts () =
  (match ok {| {"a": [1, 2.5, -3e2], "b": "x\ny", "c": true, "d": null} |} with
  | Json.Obj fields ->
    Alcotest.(check int) "field count" 4 (List.length fields);
    (match List.assoc "a" fields with
    | Json.Arr [ Json.Num a; Json.Num b; Json.Num c ] ->
      Alcotest.(check (float 0.)) "1" 1. a;
      Alcotest.(check (float 0.)) "2.5" 2.5 b;
      Alcotest.(check (float 0.)) "-3e2" (-300.) c
    | _ -> Alcotest.fail "array shape");
    (match List.assoc "b" fields with
    | Json.Str s -> Alcotest.(check string) "escape" "x\ny" s
    | _ -> Alcotest.fail "string shape")
  | _ -> Alcotest.fail "object shape");
  (match ok {|"éA😀"|} with
  | Json.Str s -> Alcotest.(check string) "utf8 + surrogate pair" "\xc3\xa9A\xf0\x9f\x98\x80" s
  | _ -> Alcotest.fail "unicode string");
  match Json.member "b" (ok {|{"a": 1, "b": 2}|}) with
  | Some (Json.Num n) -> Alcotest.(check (float 0.)) "member" 2. n
  | _ -> Alcotest.fail "member lookup"

let test_json_rejects () =
  rejects "";
  rejects "{";
  rejects "[1, 2,]";
  rejects {|{"a": 1,}|};
  rejects {|{"a" 1}|};
  rejects "[1] garbage";
  rejects "01";
  rejects "1.";
  rejects ".5";
  rejects "+1";
  rejects "NaN";
  rejects "Infinity";
  rejects "1e";
  rejects "tru";
  rejects "\"unterminated";
  rejects "\"raw \x01 control\"";
  rejects {|"\ud800"|} (* unpaired high surrogate *);
  rejects {|"\udc00 low first"|};
  rejects {|"bad \q escape"|}

let prop_escape_roundtrip =
  QCheck.Test.make ~name:"Json.escape round-trips through Json.parse" ~count:500
    QCheck.string (fun s ->
      match Json.parse (Printf.sprintf "\"%s\"" (Json.escape s)) with
      | Ok (Json.Str s') -> String.equal s s'
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Disabled mode: records nothing, allocates nothing                     *)
(* ------------------------------------------------------------------ *)

(* Top-level thunk, so the measured region below allocates no closure. *)
let thunk_17 () = 17

let test_disabled_records_nothing () =
  Alcotest.(check bool) "not enabled" false (T.enabled ());
  Alcotest.(check bool) "not journalling" false (T.journalling ());
  let c = T.counter "engine.waves" in
  let h = T.histogram "engine.wave.size" in
  T.incr c;
  T.add c 41;
  T.max_gauge c 99;
  T.observe h 7;
  T.event "engine.frontier";
  T.journal "sched.step" [ ("sel", T.A [ 1 ]) ];
  T.emit_value "engine.frontier" 3;
  T.progress_tick ~label:"explore" ~expanded:1 ~discovered:2 ~budget:10 ~wave:1 ~frontier:1;
  Alcotest.(check int) "counter untouched" 0 (T.value c);
  Alcotest.(check int) "span passes value through" 17 (T.with_span "explore" thunk_17);
  (* a metrics snapshot in the disabled state is valid and empty-ish *)
  match Json.parse (T.metrics_json ()) with
  | Error e -> Alcotest.failf "disabled metrics_json unparseable: %s" e
  | Ok doc ->
    Alcotest.(check (list string)) "disabled metrics validate" [] (T.validate_metrics doc);
    (match Json.member "counters" doc with
    | Some (Json.Obj fields) -> Alcotest.(check int) "no counters recorded" 0 (List.length fields)
    | _ -> Alcotest.fail "counters object missing")

let test_disabled_no_allocation () =
  let c = T.counter "engine.waves" in
  let h = T.histogram "engine.wave.size" in
  let before = Gc.minor_words () in
  for i = 1 to 50_000 do
    T.incr c;
    T.add c 3;
    T.max_gauge c i;
    T.observe h i;
    ignore (T.with_span "explore" thunk_17)
  done;
  let after = Gc.minor_words () in
  (* 250k hot-path operations; allow a small constant slack for the two
     Gc.minor_words calls themselves *)
  Alcotest.(check bool)
    (Printf.sprintf "minor words allocated: %.0f" (after -. before))
    true
    (after -. before < 256.);
  Alcotest.(check int) "still nothing recorded" 0 (T.value c)

let prop_disabled_counters_stay_zero =
  QCheck.Test.make ~name:"disabled counters ignore any op sequence" ~count:200
    QCheck.(list (pair (int_range 0 3) small_nat))
    (fun ops ->
      let c = T.counter "engine.memo.hits" in
      let h = T.histogram "sched.selection.size" in
      List.iter
        (fun (op, v) ->
          match op with
          | 0 -> T.incr c
          | 1 -> T.add c v
          | 2 -> T.max_gauge c v
          | _ -> T.observe h v)
        ops;
      T.value c = 0)

(* ------------------------------------------------------------------ *)
(* Enabled mode: sinks, round-trips, registry validation                 *)
(* ------------------------------------------------------------------ *)

let trace_file = Filename.temp_file "dda_test_trace" ".json"
let journal_file = Filename.temp_file "dda_test_journal" ".jsonl"

let test_enable () =
  T.enable ~trace:trace_file ~journal:journal_file ();
  Alcotest.(check bool) "enabled" true (T.enabled ());
  Alcotest.(check bool) "journalling" true (T.journalling ());
  Alcotest.check_raises "enable is write-once"
    (Invalid_argument "Telemetry.enable: already enabled (the flag is write-once)") (fun () ->
      T.enable ())

(* Drive real instrumented code: a scheduler for journal events, an
   exploration + verdict for engine counters and spans. *)
let test_enabled_instrumented_run () =
  let sched = Scheduler.round_robin ~n:3 in
  for _ = 1 to 10 do
    ignore (Scheduler.next sched)
  done;
  Scheduler.reset sched;
  let g = G.line [ "a"; "b"; "b" ] in
  let space = Space.explore ~max_configs:100_000 (H.weak_majority ~degree_bound:2) g in
  let _ = Decide.adversarial space in
  Alcotest.(check int) "sched.steps counted" 10 (T.value (T.counter "sched.steps"));
  Alcotest.(check int) "sched.resets counted" 1 (T.value (T.counter "sched.resets"));
  Alcotest.(check bool) "configs counted" true
    (T.value (T.counter "engine.configs.interned") = space.Space.size);
  Alcotest.(check bool) "memo hits recorded" true (T.value (T.counter "engine.memo.hits") > 0)

let parse_file_exn kind path =
  match Json.parse_file path with
  | Ok doc -> doc
  | Error e -> Alcotest.failf "%s %s does not parse strictly: %s" kind path e

let test_metrics_roundtrip () =
  let doc = parse_file_exn "metrics" (let f = Filename.temp_file "dda_test_metrics" ".json" in
                                      T.write_metrics f; f) in
  Alcotest.(check (list string)) "metrics validate against registry" [] (T.validate_metrics doc);
  (* the derived memo hit rate is present once the memo counters are *)
  match Json.member "derived" doc with
  | Some (Json.Obj fields) ->
    (match List.assoc_opt "engine.memo.hit_rate" fields with
    | Some (Json.Num r) -> Alcotest.(check bool) "hit rate in [0,1]" true (r >= 0. && r <= 1.)
    | _ -> Alcotest.fail "engine.memo.hit_rate missing")
  | _ -> Alcotest.fail "derived block missing"

let test_trace_and_journal_roundtrip () =
  (* shutdown finalises both sink files; counters survive *)
  T.shutdown ();
  T.shutdown () (* idempotent *);
  let doc = parse_file_exn "trace" trace_file in
  Alcotest.(check (list string)) "trace validates" [] (T.validate_trace doc);
  (match Json.member "traceEvents" doc with
  | Some (Json.Arr events) ->
    let complete name =
      List.exists
        (fun ev ->
          Json.member "ph" ev = Some (Json.Str "X") && Json.member "name" ev = Some (Json.Str name))
        events
    in
    Alcotest.(check bool) "explore span present" true (complete "explore");
    Alcotest.(check bool) "scc span present" true (complete "scc");
    Alcotest.(check bool) "verdict span present" true (complete "verdict")
  | _ -> Alcotest.fail "traceEvents missing");
  let contents = In_channel.with_open_bin journal_file In_channel.input_all in
  Alcotest.(check (list string)) "journal validates" [] (T.validate_journal contents);
  let lines = List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' contents) in
  let steps =
    List.filter
      (fun l -> match Json.parse l with
        | Ok doc -> Json.member "ev" doc = Some (Json.Str "sched.step")
        | Error _ -> false)
      lines
  in
  Alcotest.(check int) "10 sched.step journal events" 10 (List.length steps);
  List.iter
    (fun l ->
      match Json.parse l with
      | Ok doc ->
        (match Json.member "sel" doc with
        | Some (Json.Arr [ Json.Num _ ]) -> ()
        | _ -> Alcotest.fail "sched.step journal line lacks a 1-element sel array")
      | Error e -> Alcotest.failf "journal line unparseable: %s" e)
    steps;
  Sys.remove trace_file;
  Sys.remove journal_file

(* After shutdown the counters are still live (write_metrics still works),
   which the enabled-phase qcheck properties rely on. *)
let prop_counter_add_sums =
  QCheck.Test.make ~name:"counter value = sum of adds (enabled)" ~count:200
    QCheck.(list small_nat)
    (fun vs ->
      let c = T.counter "engine.table.resizes" in
      let before = T.value c in
      List.iter (T.add c) vs;
      T.value c = before + List.fold_left ( + ) 0 vs)

let prop_max_gauge_is_max =
  QCheck.Test.make ~name:"max_gauge is a running maximum (enabled)" ~count:200
    QCheck.(list small_nat)
    (fun vs ->
      let c = T.counter "engine.frontier.peak" in
      let before = T.value c in
      List.iter (T.max_gauge c) vs;
      T.value c = List.fold_left max before vs)

let prop_histogram_totals =
  QCheck.Test.make ~name:"histogram snapshot count/sum/min/max (enabled)" ~count:50
    QCheck.(list_of_size Gen.(1 -- 20) (int_range 0 100_000))
    (fun vs ->
      (* a fresh uniquely-named histogram per sample set would leak names
         into the registry check, so reuse one registered name and track
         the expected running totals ourselves *)
      let h = T.histogram "sched.selection.size" in
      List.iter (T.observe h) vs;
      match Json.parse (T.metrics_json ()) with
      | Error _ -> false
      | Ok doc -> (
        match Json.member "histograms" doc with
        | Some hs -> (
          match Json.member "sched.selection.size" hs with
          | Some snap -> (
            match (Json.member "count" snap, Json.member "min" snap, Json.member "max" snap) with
            | Some (Json.Num count), Some (Json.Num mn), Some (Json.Num mx) ->
              count >= float_of_int (List.length vs)
              && mn <= float_of_int (List.fold_left min max_int vs)
              && mx >= float_of_int (List.fold_left max 0 vs)
            | _ -> false)
          | None -> false)
        | None -> false))

(* record_span: the thunk-free span entry point used by the service for
   request lifetimes that cross threads. *)
let test_record_span_aggregates () =
  let span_count name =
    match Json.parse (T.metrics_json ()) with
    | Error e -> Alcotest.failf "metrics unparseable: %s" e
    | Ok doc -> (
      match Json.member "spans" doc with
      | Some spans -> (
        match Json.member name spans with
        | Some snap -> (
          match (Json.member "count" snap, Json.member "total_s" snap) with
          | Some (Json.Num c), Some (Json.Num t) -> (int_of_float c, t)
          | _ -> Alcotest.failf "span %s lacks count/total_s" name)
        | None -> (0, 0.))
      | None -> Alcotest.fail "spans block missing")
  in
  let c0, t0 = span_count "service.request" in
  T.record_span "service.request" ~args:[ ("id", T.S "r1"); ("status", T.S "ok") ] ~seconds:0.25;
  T.record_span "service.request" ~seconds:0.5;
  let c1, t1 = span_count "service.request" in
  Alcotest.(check int) "two spans recorded" (c0 + 2) c1;
  Alcotest.(check bool) "durations accumulate" true (t1 -. t0 > 0.74 && t1 -. t0 < 0.76)

(* Find-or-create of counters and histograms is reachable from worker
   domains (engine per-domain counters, service workers); hammer the
   registration path from several domains at once and check the registry
   tables stay consistent. *)
let test_concurrent_registration () =
  let histogram_names = [| "engine.wave.size"; "sched.selection.size"; "service.latency_ms" |] in
  let domains =
    Array.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to 2_499 do
              let c = T.counter (Printf.sprintf "engine.domain.%d.items" ((d + i) mod 8)) in
              ignore (T.value c);
              T.observe (T.histogram histogram_names.(i mod 3)) 1;
              T.record_span "telemetry.selftest" ~seconds:0.
            done))
  in
  Array.iter Domain.join domains;
  (* every domain resolved each name to the same object *)
  let c = T.counter "engine.domain.3.items" in
  let v0 = T.value c in
  T.incr c;
  Alcotest.(check int) "find-or-create is stable across domains" (v0 + 1)
    (T.value (T.counter "engine.domain.3.items"));
  (* and the snapshot taken after the hammer is structurally sound *)
  match Json.parse (T.metrics_json ()) with
  | Error e -> Alcotest.failf "metrics unparseable after concurrent registration: %s" e
  | Ok doc ->
    Alcotest.(check (list string)) "snapshot validates against the registry" []
      (T.validate_metrics doc)

let test_validators_reject_garbage () =
  let bad_metrics = ok {|{"schema": "dda.telemetry/1", "counters": {"no.such.counter": 1}}|} in
  Alcotest.(check bool) "unknown counter name rejected" true
    (T.validate_metrics bad_metrics <> []);
  let bad_trace = ok {|{"traceEvents": [{"name": "explore", "ph": "X"}]}|} in
  Alcotest.(check bool) "X event without ts/dur rejected" true (T.validate_trace bad_trace <> []);
  let bad_trace2 = ok {|{"traceEvents": [{"name": "nope", "ph": "X", "ts": 0, "dur": 1, "pid": 0, "tid": 0}]}|} in
  Alcotest.(check bool) "unregistered span name rejected" true (T.validate_trace bad_trace2 <> []);
  Alcotest.(check bool) "journal without ev rejected" true
    (T.validate_journal {|{"t": 0.1}|} <> [])

(* --- clocks ------------------------------------------------------------------ *)

let test_monotonic_clock () =
  let a = T.monotonic () in
  let b = T.monotonic () in
  Alcotest.(check bool) "never steps backwards" true (b >= a);
  (* the C stub is expected to bind on every platform CI runs on; the wall
     fallback exists for exotic targets only *)
  Alcotest.(check bool) "CLOCK_MONOTONIC bound" true T.monotonic_available

(* --- sliding windows --------------------------------------------------------- *)

(* deterministic timeline via ?now: second 100.x throughout *)
let test_window_basic () =
  let w = T.Window.create ~window_s:10 "service.window.latency_ms" in
  List.iter (fun v -> T.Window.observe ~now:100.2 w v) [ 1.; 2.; 3.; 4.; 100. ];
  let s = T.Window.snapshot ~now:100.9 w in
  Alcotest.(check int) "count" 5 s.T.Window.count;
  Alcotest.(check (float 1e-9) "sum") 110. s.T.Window.sum;
  Alcotest.(check (float 1e-9) "rate = count / window") 0.5 s.T.Window.rate;
  Alcotest.(check (float 1e-9) "p50 nearest-rank") 3. s.T.Window.p50;
  Alcotest.(check (float 1e-9) "p99 is the top sample") 100. s.T.Window.p99;
  Alcotest.(check (float 1e-9) "max") 100. s.T.Window.max_v

let test_window_rotation_and_expiry () =
  let w = T.Window.create ~window_s:3 "service.window.latency_ms" in
  T.Window.observe ~now:10. w 1.;
  T.Window.observe ~now:11. w 2.;
  T.Window.observe ~now:12. w 3.;
  (* at t=12.5 all three seconds are inside the 3 s window *)
  Alcotest.(check int) "full window" 3 (T.Window.snapshot ~now:12.5 w).T.Window.count;
  (* at t=13.5 the t=10 slot has aged out *)
  Alcotest.(check int) "oldest second expired" 2 (T.Window.snapshot ~now:13.5 w).T.Window.count;
  (* a much later observation lands in a recycled slot and is alone *)
  T.Window.observe ~now:13.0 w 9.;
  let s = T.Window.snapshot ~now:13.5 w in
  Alcotest.(check int) "recycled slot counted once" 3 s.T.Window.count;
  Alcotest.(check (float 1e-9) "max from the new slot") 9. s.T.Window.max_v

let test_window_idle_gap () =
  let w = T.Window.create ~window_s:5 "service.window.latency_ms" in
  for i = 0 to 9 do
    T.Window.observe ~now:(20. +. float_of_int i) w 1.
  done;
  Alcotest.(check int) "busy" 5 (T.Window.snapshot ~now:29.5 w).T.Window.count;
  (* a long idle gap: every slot stamp is stale, nothing is served *)
  let s = T.Window.snapshot ~now:1000. w in
  Alcotest.(check int) "idle window is empty" 0 s.T.Window.count;
  Alcotest.(check (float 1e-9) "idle quantiles zero") 0. s.T.Window.p99

let test_window_reservoir_cap () =
  let w = T.Window.create ~window_s:2 ~slot_cap:64 "service.window.latency_ms" in
  (* 10k observations in one second: counts stay exact, samples bounded *)
  for i = 1 to 10_000 do
    T.Window.observe ~now:50.5 w (float_of_int i)
  done;
  let s = T.Window.snapshot ~now:50.9 w in
  Alcotest.(check int) "count is exact beyond the cap" 10_000 s.T.Window.count;
  Alcotest.(check bool) "quantiles from the reservoir stay in range" true
    (s.T.Window.p50 >= 1. && s.T.Window.p50 <= 10_000.);
  (* and the JSON form parses with the expected fields *)
  match Json.parse (T.Window.snapshot_json ~now:50.9 w) with
  | Error e -> Alcotest.failf "window snapshot JSON: %s" e
  | Ok doc ->
    List.iter
      (fun k ->
        match Json.member k doc with
        | Some (Json.Num _) -> ()
        | _ -> Alcotest.failf "window snapshot field %s missing" k)
      [ "window_s"; "count"; "sum"; "rate"; "p50"; "p95"; "p99"; "max" ]

(* --- dda.stats/1 validation -------------------------------------------------- *)

let test_validate_stats () =
  let good =
    ok
      {|{"schema":"dda.stats/1","health":"ok",
         "gauges":{"service.uptime_s":1.5,"service.inflight":0,"service.verb.decide":3,
                   "service.requests":3},
         "windows":{"service.window.latency_ms":
           {"window_s":60,"count":3,"sum":4.5,"rate":0.05,"p50":1.5,"p95":1.5,"p99":1.5,"max":1.5}},
         "telemetry":{"schema":"dda.telemetry/1","counters":{},"histograms":{},"spans":{},"derived":{}}}|}
  in
  Alcotest.(check (list string)) "well-formed stats validate" [] (T.validate_stats good);
  (* an otherwise-valid embedded telemetry doc, so each bad_* fixture fails
     for exactly the reason under test *)
  let tel = {|"telemetry":{"schema":"dda.telemetry/1","counters":{},"histograms":{},"spans":{},"derived":{}}|} in
  let bad_health = ok ({|{"schema":"dda.stats/1","health":"meh","gauges":{},"windows":{},|} ^ tel ^ "}") in
  Alcotest.(check bool) "unknown health state rejected" true (T.validate_stats bad_health <> []);
  let bad_gauge = ok ({|{"schema":"dda.stats/1","health":"ok","gauges":{"no.such.gauge":1},"windows":{},|} ^ tel ^ "}") in
  Alcotest.(check bool) "unregistered gauge rejected" true (T.validate_stats bad_gauge <> []);
  let bad_window = ok ({|{"schema":"dda.stats/1","health":"ok","gauges":{},"windows":{"no.such.window":{"window_s":60,"count":0,"sum":0,"rate":0,"p50":0,"p95":0,"p99":0,"max":0}},|} ^ tel ^ "}") in
  Alcotest.(check bool) "unregistered window rejected" true (T.validate_stats bad_window <> []);
  let bad_schema = ok ({|{"schema":"dda.stats/2","health":"ok","gauges":{},"windows":{},|} ^ tel ^ "}") in
  Alcotest.(check bool) "wrong schema rejected" true (T.validate_stats bad_schema <> []);
  let bad_tel = ok {|{"schema":"dda.stats/1","health":"ok","gauges":{},"windows":{},"telemetry":{"schema":"dda.telemetry/1","counters":{"no.such.counter":1}}}|} in
  Alcotest.(check bool) "embedded telemetry still validated" true (T.validate_stats bad_tel <> [])

let () =
  Alcotest.run "telemetry"
    [
      ( "json",
        [
          Alcotest.test_case "accepts valid documents" `Quick test_json_accepts;
          Alcotest.test_case "rejects malformed documents" `Quick test_json_rejects;
          QCheck_alcotest.to_alcotest prop_escape_roundtrip;
        ] );
      ( "disabled",
        [
          Alcotest.test_case "records nothing" `Quick test_disabled_records_nothing;
          Alcotest.test_case "allocates nothing" `Quick test_disabled_no_allocation;
          QCheck_alcotest.to_alcotest prop_disabled_counters_stay_zero;
        ] );
      ( "enabled",
        [
          Alcotest.test_case "enable is write-once" `Quick test_enable;
          Alcotest.test_case "instrumented run counts" `Quick test_enabled_instrumented_run;
          Alcotest.test_case "metrics round-trip + registry" `Quick test_metrics_roundtrip;
          Alcotest.test_case "trace + journal round-trip" `Quick test_trace_and_journal_roundtrip;
          QCheck_alcotest.to_alcotest prop_counter_add_sums;
          QCheck_alcotest.to_alcotest prop_max_gauge_is_max;
          QCheck_alcotest.to_alcotest prop_histogram_totals;
          Alcotest.test_case "record_span aggregates" `Quick test_record_span_aggregates;
          Alcotest.test_case "concurrent registration from domains" `Quick
            test_concurrent_registration;
          Alcotest.test_case "validators reject garbage" `Quick test_validators_reject_garbage;
        ] );
      ( "live",
        [
          Alcotest.test_case "monotonic clock" `Quick test_monotonic_clock;
          Alcotest.test_case "window basics" `Quick test_window_basic;
          Alcotest.test_case "window rotation and expiry" `Quick test_window_rotation_and_expiry;
          Alcotest.test_case "window idle gap decays" `Quick test_window_idle_gap;
          Alcotest.test_case "window reservoir cap" `Quick test_window_reservoir_cap;
          Alcotest.test_case "dda.stats/1 validation" `Quick test_validate_stats;
        ] );
    ]
