(* A sharded, size-bounded LRU map keyed by strings.

   Each shard is an open hash table plus an intrusive circular
   doubly-linked list threaded through the nodes (sentinel-rooted:
   MRU at [sent.next], LRU at [sent.prev]).  Every operation takes one
   shard mutex, so readers on different shards never contend and a
   reader racing an eviction on the same shard serialises briefly
   instead of observing a torn list.

   Negative entries ("this key is known absent") carry an absolute
   expiry so a foreign process writing the backing store is picked up
   after at most the TTL.  A [put] always supersedes a negative.

   Expiries live on the monotonic clock
   ({!Dda_telemetry.Telemetry.monotonic}): a TTL is a duration, and wall
   time steps (NTP slew, suspend/resume) would either pin a tombstone far
   in the future or expire it instantly.  [?now] injections must come
   from the same clock. *)

type 'v payload =
  | Value of 'v
  | Absent of float  (* absolute expiry, monotonic clock *)

type 'v node = {
  n_key : string;
  mutable n_payload : 'v payload;
  mutable n_prev : 'v node;
  mutable n_next : 'v node;
}

type 'v shard = {
  m : Mutex.t;
  tbl : (string, 'v node) Hashtbl.t;
  sent : 'v node;  (* circular sentinel; never in [tbl] *)
  cap : int;
  mutable size : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type 'v t = {
  shards : 'v shard array;
  negative_ttl : float;
}

type stats = {
  size : int;
  capacity : int;
  hits : int;
  misses : int;
  evictions : int;
}

let make_sentinel () =
  let rec s = { n_key = ""; n_payload = Absent neg_infinity; n_prev = s; n_next = s } in
  s

let make_shard cap =
  {
    m = Mutex.create ();
    tbl = Hashtbl.create (min 1024 (2 * cap));
    sent = make_sentinel ();
    cap;
    size = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let create ?(shards = 8) ?(negative_ttl = 1.0) ~capacity () =
  let shards = max 1 shards in
  let capacity = max 1 capacity in
  (* ceiling division: total capacity is within [shards] of the request *)
  let per_shard = max 1 ((capacity + shards - 1) / shards) in
  { shards = Array.init shards (fun _ -> make_shard per_shard); negative_ttl }

let shard_of t key = t.shards.(Hashtbl.hash key land max_int mod Array.length t.shards)

(* --- list surgery (shard mutex held) ---------------------------------------- *)

let unlink n =
  n.n_prev.n_next <- n.n_next;
  n.n_next.n_prev <- n.n_prev

let push_front sh n =
  n.n_next <- sh.sent.n_next;
  n.n_prev <- sh.sent;
  sh.sent.n_next.n_prev <- n;
  sh.sent.n_next <- n

let drop sh n =
  unlink n;
  Hashtbl.remove sh.tbl n.n_key;
  sh.size <- sh.size - 1

(* evict from the cold end until the shard respects its bound *)
let enforce_cap (sh : _ shard) =
  let evicted = ref 0 in
  while sh.size > sh.cap do
    let lru = sh.sent.n_prev in
    if lru == sh.sent then sh.size <- sh.cap  (* defensive: empty list *)
    else begin
      drop sh lru;
      sh.evictions <- sh.evictions + 1;
      incr evicted
    end
  done;
  !evicted

(* --- operations -------------------------------------------------------------- *)

let find ?now t key =
  let sh = shard_of t key in
  Mutex.lock sh.m;
  let r =
    match Hashtbl.find_opt sh.tbl key with
    | None ->
      sh.misses <- sh.misses + 1;
      `Miss
    | Some n -> (
      match n.n_payload with
      | Value v ->
        unlink n;
        push_front sh n;
        sh.hits <- sh.hits + 1;
        `Hit v
      | Absent expiry ->
        let now = match now with Some f -> f | None -> Dda_telemetry.Telemetry.monotonic () in
        if now < expiry then `Negative
        else begin
          (* the tombstone aged out: forget it and report a plain miss *)
          drop sh n;
          sh.misses <- sh.misses + 1;
          `Miss
        end)
  in
  Mutex.unlock sh.m;
  r

(* returns how many entries were evicted to make room *)
let put t key v =
  let sh = shard_of t key in
  Mutex.lock sh.m;
  (match Hashtbl.find_opt sh.tbl key with
  | Some n ->
    n.n_payload <- Value v;
    unlink n;
    push_front sh n
  | None ->
    let n = { n_key = key; n_payload = Value v; n_prev = sh.sent; n_next = sh.sent } in
    Hashtbl.add sh.tbl key n;
    push_front sh n;
    sh.size <- sh.size + 1);
  let evicted = enforce_cap sh in
  Mutex.unlock sh.m;
  evicted

let note_absent ?now t key =
  if t.negative_ttl > 0. then begin
    let now = match now with Some f -> f | None -> Dda_telemetry.Telemetry.monotonic () in
    let expiry = now +. t.negative_ttl in
    let sh = shard_of t key in
    Mutex.lock sh.m;
    (match Hashtbl.find_opt sh.tbl key with
    | Some ({ n_payload = Absent _; _ } as n) -> n.n_payload <- Absent expiry
    | Some _ -> ()  (* never shadow a live value with a tombstone *)
    | None ->
      let n = { n_key = key; n_payload = Absent expiry; n_prev = sh.sent; n_next = sh.sent } in
      Hashtbl.add sh.tbl key n;
      push_front sh n;
      ignore (enforce_cap sh));
    Mutex.unlock sh.m
  end

let remove t key =
  let sh = shard_of t key in
  Mutex.lock sh.m;
  (match Hashtbl.find_opt sh.tbl key with Some n -> drop sh n | None -> ());
  Mutex.unlock sh.m

let flush t =
  Array.iter
    (fun sh ->
      Mutex.lock sh.m;
      Hashtbl.reset sh.tbl;
      sh.sent.n_next <- sh.sent;
      sh.sent.n_prev <- sh.sent;
      sh.size <- 0;
      Mutex.unlock sh.m)
    t.shards

let stats t =
  Array.fold_left
    (fun acc sh ->
      Mutex.lock sh.m;
      let r =
        {
          size = acc.size + sh.size;
          capacity = acc.capacity + sh.cap;
          hits = acc.hits + sh.hits;
          misses = acc.misses + sh.misses;
          evictions = acc.evictions + sh.evictions;
        }
      in
      Mutex.unlock sh.m;
      r)
    { size = 0; capacity = 0; hits = 0; misses = 0; evictions = 0 }
    t.shards
