(** Class-aware acceptance decisions: the end-to-end "does automaton [A]
    accept graph [G]?" API.

    Wraps the exact procedures of [Dda_verify.Decide] with exploration
    budgets and the class semantics: adversarial fairness uses the fair-SCC
    analysis on the explicit space, pseudo-stochastic fairness the
    bottom-SCC analysis, and {!decide_clique} uses the counted clique space
    — the executable version of the paper's NL upper-bound argument
    (Lemma 5.1): for labelling properties the graph may be replaced by the
    clique with the same label count, whose configurations are just state
    counts. *)

type budget = { max_configs : int; max_steps : int }

val default_budget : budget
(** 200_000 configurations / 1_000_000 steps. *)

type outcome = (Dda_verify.Decide.verdict, [ `Too_large of int | `No_cycle ]) result

val decide :
  ?budget:budget ->
  ?jobs:int ->
  ?symmetry:Dda_verify.Symmetry.t ->
  ?engine:Dda_batch.Spec.engine ->
  fairness:Classes.fairness ->
  ('l, 's) Dda_machine.Machine.t ->
  'l Dda_graph.Graph.t ->
  outcome
(** Exact decision by state-space analysis.  [`Too_large] reports an
    exceeded configuration budget.  [jobs] parallelises exploration over
    OCaml 5 domains; [symmetry] quotients the space by a group of adjacency
    automorphisms of [g] (verdicts are unchanged — see
    [Dda_verify.Engine]).

    [engine] (default [Explicit]) selects the backend: [Symbolic] decides
    over counted configurations — multisets of states rather than node
    vectors — and only accepts clique and star graphs
    ([Invalid_argument] otherwise); [Auto] uses the counted engine when
    the graph is a clique or star and falls back to the explicit engine
    for every other topology.  Verdicts agree across engines wherever
    both apply. *)

val regime_of_fairness : Classes.fairness -> Dda_batch.Spec.regime
(** [Classes.fairness] and the batch layer's regime are the same two-point
    type; this is the conversion used by every cached entry point. *)

val decide_cached :
  ?cache:Dda_batch.Store.t ->
  ?machine_key:string ->
  ?budget:budget ->
  ?jobs:int ->
  ?symmetry:Dda_verify.Symmetry.t ->
  ?engine:Dda_batch.Spec.engine ->
  fairness:Classes.fairness ->
  (string, 's) Dda_machine.Machine.t ->
  string Dda_graph.Graph.t ->
  outcome
(** {!decide} through the persistent verdict cache.  Without [?cache] it is
    exactly {!decide} — no fingerprint is computed.  [machine_key] lets
    callers that decide many graphs with one machine amortise the machine
    fingerprint ({!Dda_batch.Fingerprint.machine}) across the calls.
    [engine] routes as in {!decide}; symbolic verdicts live under
    engine-salted cache keys, so the two engines never share entries. *)

val decide_synchronous :
  ?budget:budget ->
  ('l, 's) Dda_machine.Machine.t ->
  'l Dda_graph.Graph.t ->
  outcome
(** The synchronous (xy$) classes: deterministic run, cycle detection;
    [`No_cycle] if the run did not close a cycle within the step budget. *)

val decide_clique :
  ?budget:budget ->
  ('l, 's) Dda_machine.Machine.t ->
  'l Dda_multiset.Multiset.t ->
  outcome
(** Pseudo-stochastic decision on the clique with the given label count,
    over counted configurations (logarithmic-space objects). *)

val simulate_verdict :
  ?budget:budget ->
  ?seed:int ->
  fairness:Classes.fairness ->
  ('l, 's) Dda_machine.Machine.t ->
  'l Dda_graph.Graph.t ->
  bool option
(** Cheap empirical fallback for machines whose spaces are too large: run
    under a fair scheduler sampled for the class (random exclusive for [F],
    a random fair adversary for [f]) and report the settled consensus, or
    [None] if the run did not settle. *)
