module G = Dda_graph.Graph
module S = Dda_scheduler.Scheduler
module Config = Dda_runtime.Config
module Run = Dda_runtime.Run
open Helpers

let test_initial_config () =
  let g = G.line [ 'a'; 'b'; 'b' ] in
  let c = Config.initial exists_a g in
  Alcotest.(check bool) "node 0 Yes" true (Config.state c 0 = Yes);
  Alcotest.(check bool) "node 1 No" true (Config.state c 1 = No);
  Alcotest.(check int) "size" 3 (Config.size c)

let test_step_exclusive () =
  let g = G.line [ 'a'; 'b'; 'b' ] in
  let c0 = Config.initial exists_a g in
  let c1 = Config.step exists_a g c0 [ 1 ] in
  Alcotest.(check bool) "node 1 became Yes" true (Config.state c1 1 = Yes);
  Alcotest.(check bool) "node 2 untouched" true (Config.state c1 2 = No);
  (* stepping node 2 before node 1 does nothing: it sees only node 1 *)
  let c1' = Config.step exists_a g c0 [ 2 ] in
  Alcotest.(check bool) "node 2 unchanged" true (Config.equal c0 c1')

let test_step_synchronous_simultaneity () =
  (* Under a synchronous step all nodes read the PRE-state: on a--b--b the
     last node cannot learn about 'a' in one step. *)
  let g = G.line [ 'a'; 'b'; 'b' ] in
  let c0 = Config.initial exists_a g in
  let c1 = Config.step exists_a g c0 [ 0; 1; 2 ] in
  Alcotest.(check bool) "middle learns" true (Config.state c1 1 = Yes);
  Alcotest.(check bool) "far end does not" true (Config.state c1 2 = No)

let test_quiescence () =
  let g = G.line [ 'a'; 'b'; 'b' ] in
  let all_yes = Config.of_states [| Yes; Yes; Yes |] in
  Alcotest.(check bool) "all-Yes quiescent" true (Config.is_quiescent exists_a g all_yes);
  let c0 = Config.initial exists_a g in
  Alcotest.(check bool) "initial not quiescent" false (Config.is_quiescent exists_a g c0)

let test_verdict () =
  Alcotest.(check bool) "mixed" true (Config.verdict exists_a (Config.of_states [| Yes; No |]) = `Mixed);
  Alcotest.(check bool) "accepting" true
    (Config.verdict exists_a (Config.of_states [| Yes; Yes |]) = `Accepting);
  Alcotest.(check bool) "rejecting" true
    (Config.verdict exists_a (Config.of_states [| No; No |]) = `Rejecting)

let test_simulate_accepts () =
  let g = G.line [ 'a'; 'b'; 'b'; 'b'; 'b' ] in
  let sched = S.round_robin ~n:5 in
  let r = Run.simulate ~max_steps:1000 exists_a g sched in
  Alcotest.(check bool) "accepting" true (r.Run.verdict = `Accepting);
  Alcotest.(check bool) "quiescent" true r.Run.quiescent;
  Alcotest.(check bool) "settled" true (r.Run.settled_at <> None)

let test_simulate_rejects () =
  let g = G.cycle [ 'b'; 'b'; 'b' ] in
  let sched = S.random_exclusive ~n:3 ~seed:1 in
  let r = Run.simulate ~max_steps:1000 exists_a g sched in
  Alcotest.(check bool) "rejecting" true (r.Run.verdict = `Rejecting);
  Alcotest.(check bool) "quiescent immediately" true r.Run.quiescent;
  Alcotest.(check int) "settled at 0" 0 (Option.get r.Run.settled_at)

let test_simulate_under_adversaries () =
  let g = G.grid ~width:3 ~height:3 (fun x y -> if x = 0 && y = 0 then 'a' else 'b') in
  List.iter
    (fun sched ->
      let r = Run.simulate ~max_steps:5000 exists_a g sched in
      Alcotest.(check bool) "accepts under adversary" true (r.Run.verdict = `Accepting && r.Run.quiescent))
    [
      S.round_robin ~n:9;
      S.burst ~n:9 ~width:4;
      S.starve ~n:9 ~victim:8 ~period:11;
      S.random_adversary ~n:9 ~seed:5;
      S.synchronous ~n:9;
      S.random_liberal ~n:9 ~seed:2;
    ]

let test_simulate_mismatched_scheduler () =
  let g = G.line [ 'a'; 'b'; 'b' ] in
  Alcotest.check_raises "node count mismatch"
    (Invalid_argument "Run.simulate: scheduler node count does not match the graph") (fun () ->
      ignore (Run.simulate ~max_steps:10 exists_a g (S.round_robin ~n:4)))

let test_trace () =
  let g = G.line [ 'a'; 'b'; 'b' ] in
  let steps, _final = Run.trace ~steps:4 exists_a g (S.round_robin ~n:3) in
  Alcotest.(check int) "recorded steps" 4 (List.length steps);
  let _, first_sel = List.hd steps in
  Alcotest.(check (list int)) "first selection" [ 0 ] first_sel

let test_on_step_called () =
  let g = G.line [ 'a'; 'b'; 'b' ] in
  let calls = ref 0 in
  let r =
    Run.simulate
      ~on_step:(fun ~step:_ ~selection:_ ~before:_ ~after:_ -> incr calls)
      ~max_steps:50 exists_a g (S.round_robin ~n:3)
  in
  Alcotest.(check int) "one call per step" r.Run.steps_taken !calls

let test_consensus_time () =
  let g = G.line [ 'a'; 'b'; 'b'; 'b' ] in
  let mk =
    let k = ref 0 in
    fun () ->
      incr k;
      S.random_exclusive ~n:4 ~seed:!k
  in
  match Run.consensus_time ~attempts:5 ~max_steps:2000 exists_a g mk with
  | None -> Alcotest.fail "should settle"
  | Some t -> Alcotest.(check bool) "positive settle time" true (t >= 0)

let test_selection_irrelevance () =
  (* [16]: the selection criterion (synchronous / exclusive / liberal) does
     not affect the decision power; our deciders must agree across all three
     on concrete runs *)
  let machines_graphs =
    [
      (G.cycle [ 'a'; 'b'; 'b'; 'b' ], true);
      (G.line [ 'b'; 'b'; 'b' ], false);
      (G.star ~centre:'b' ~leaves:[ 'b'; 'a'; 'b' ], true);
    ]
  in
  List.iter
    (fun (g, expected) ->
      let n = G.nodes g in
      List.iter
        (fun sched ->
          let r = Run.simulate ~max_steps:100_000 exists_a g sched in
          Alcotest.(check bool)
            (Printf.sprintf "%s agrees" (S.name sched))
            expected
            (r.Run.verdict = `Accepting))
        [ S.synchronous ~n; S.round_robin ~n; S.random_exclusive ~n ~seed:9; S.random_liberal ~n ~seed:9 ])
    machines_graphs

let test_state_count () =
  let c = Config.of_states [| Yes; No; Yes |] in
  let m = Config.state_count c in
  Alcotest.(check int) "two Yes" 2 (Dda_multiset.Multiset.count m Yes)

let () =
  Alcotest.run "runtime"
    [
      ( "config",
        [
          Alcotest.test_case "initial" `Quick test_initial_config;
          Alcotest.test_case "exclusive step" `Quick test_step_exclusive;
          Alcotest.test_case "synchronous simultaneity" `Quick test_step_synchronous_simultaneity;
          Alcotest.test_case "quiescence" `Quick test_quiescence;
          Alcotest.test_case "verdict" `Quick test_verdict;
          Alcotest.test_case "state count" `Quick test_state_count;
        ] );
      ( "simulate",
        [
          Alcotest.test_case "accepts" `Quick test_simulate_accepts;
          Alcotest.test_case "rejects" `Quick test_simulate_rejects;
          Alcotest.test_case "adversaries" `Quick test_simulate_under_adversaries;
          Alcotest.test_case "scheduler mismatch" `Quick test_simulate_mismatched_scheduler;
          Alcotest.test_case "trace" `Quick test_trace;
          Alcotest.test_case "on_step" `Quick test_on_step_called;
          Alcotest.test_case "consensus time" `Quick test_consensus_time;
          Alcotest.test_case "selection irrelevance" `Quick test_selection_irrelevance;
        ] );
    ]
