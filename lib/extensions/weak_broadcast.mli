(** Automata with weak broadcasts (Definition 4.5) and their simulation by
    ordinary automata (Lemma 4.7).

    A weak broadcast transition [q ↦ q', f] lets an {e initiator} in state
    [q] move to [q'] while every other agent responds by applying
    [f : Q -> Q] to its state.  Broadcasts are weak: several initiators may
    fire simultaneously (as long as they form an independent set), and each
    non-initiator responds to exactly one of the signals sent.

    Response functions are {e named} — the machine stores an array of them
    and states reference indices — so that states of the compiled automaton
    (which embed the chosen response function) remain pure data.

    {!compile} is the three-phase construction of Lemma 4.7 (an
    Awerbuch-α-synchroniser-style protocol): an agent moves to the next phase
    (mod 3) only when every neighbour is in the same phase or the next, and
    phase-1 states carry the response function being propagated. *)

type ('l, 's) t = {
  base : ('l, 's) Dda_machine.Machine.t;
      (** Neighbourhood part: [Q, δ₀, δ, Y, N] and the counting bound. *)
  initiate : 's -> ('s * int) option;
      (** [initiate q = Some (q', fid)] iff [q ∈ Q_B] with broadcast
          [B(q) = (q', f_fid)]; [None] for non-initiating states. *)
  respond : int -> 's -> 's;  (** [respond fid] is the response function. *)
  response_count : int;  (** [fid] ranges over [\[0, response_count)]. *)
}

val create :
  base:('l, 's) Dda_machine.Machine.t ->
  initiate:('s -> ('s * int) option) ->
  respond:(int -> 's -> 's) ->
  response_count:int ->
  ('l, 's) t

(** {1 Direct (native) semantics}

    Used to validate the compiled automaton against the model it simulates,
    and to measure the simulation overhead (experiment E7). *)

val step_neighbourhood :
  ('l, 's) t -> 'l Dda_graph.Graph.t -> 's Dda_runtime.Config.t -> int ->
  's Dda_runtime.Config.t
(** One agent performs a neighbourhood transition; agents in initiating
    states are skipped (they can only broadcast), as in Definition 4.5. *)

val step_broadcast :
  choose:(node:int -> initiators:int list -> int) ->
  ('l, 's) t -> 'l Dda_graph.Graph.t -> 's Dda_runtime.Config.t -> int list ->
  's Dda_runtime.Config.t
(** [step_broadcast ~choose wb g c s] fires the broadcasts of the agents of
    [s] that are in initiating states (an independent set is required);
    every other agent [v] responds to initiator [choose ~node:v
    ~initiators], which must return a member of the initiator list.
    If no agent of [s] is initiating, the configuration is unchanged.
    @raise Invalid_argument if [s] is not an independent set. *)

val simulate_random :
  seed:int ->
  max_steps:int ->
  ('l, 's) t ->
  'l Dda_graph.Graph.t ->
  's Dda_runtime.Config.t * int
(** Random pseudo-stochastic-style execution of the native semantics:
    each step is a random neighbourhood selection or a random independent
    broadcast selection; responders pick uniformly among initiators.
    Stops early when the configuration is a fixpoint of every neighbourhood
    move and no initiator can change anything.  Returns the final
    configuration and the number of steps executed. *)

val successors :
  ('l, 's) t -> 'l Dda_graph.Graph.t -> 's Dda_runtime.Config.t ->
  's Dda_runtime.Config.t list
(** All distinct non-silent one-step successors of the native semantics:
    every exclusive neighbourhood move and every weak-broadcast step over
    every non-empty independent initiator set and responder assignment. *)

val space :
  max_configs:int -> ('l, 's) t -> 'l Dda_graph.Graph.t -> Dda_verify.Space.t
(** Exact configuration space of the native semantics, enumerating all
    exclusive neighbourhood moves, all non-empty independent initiator sets
    and all response assignments.  Exponential in the graph size — intended
    for graphs of up to ~6 nodes.  The space is [Counted] (pseudo-stochastic
    decisions only), matching the fairness for which weak broadcasts are
    used in the paper. *)

(** {1 The Lemma 4.7 compilation} *)

type 's state = Base of 's | Mid of 's * int * int
    (** [Base q]: phase 0, simulating state [q].  [Mid (q, i, fid)]: phase
        [i ∈ {1,2}], simulating an agent that has already applied the local
        update of the broadcast with response function [fid] and now carries
        state [q]. *)

val compile : ('l, 's) t -> ('l, 's state) Dda_machine.Machine.t
(** The automaton [P'] of Lemma 4.7 — same class as the input (the counting
    bound is preserved; phase bookkeeping only needs presence).  Acceptance
    of intermediate states is inherited from the carried base state, which
    agrees with the Lemma 4.4 wrapper in the limit. *)

val pp_state :
  (Format.formatter -> 's -> unit) -> Format.formatter -> 's state -> unit
