(** Evaluating a machine as a decider of a labelling property over a suite
    of graphs — the driver behind the Figure 1 decision tables.

    A machine {e decides} a labelling property if, on every graph of the
    suite, the exact verdict matches the predicate evaluated on the graph's
    label count.  [against_predicate] reports per-graph results;
    [all_correct] summarises. *)

type case = {
  graph_name : string;
  nodes : int;
  expected : bool;  (** the predicate on the label count *)
  got : Decision.outcome;
}

val correct : case -> bool
(** The verdict exists and matches [expected]. *)

val against_predicate :
  ?cache:Dda_batch.Store.t ->
  ?budget:Decision.budget ->
  fairness:Classes.fairness ->
  machine:(string, 's) Dda_machine.Machine.t ->
  predicate:Dda_presburger.Predicate.t ->
  graphs:(string * string Dda_graph.Graph.t) list ->
  unit ->
  case list
(** With [?cache], verdicts go through the persistent cache
    ({!Decision.decide_cached}); the machine fingerprint is computed once
    for the whole suite. *)

val against_predicate_synchronous :
  ?budget:Decision.budget ->
  machine:(string, 's) Dda_machine.Machine.t ->
  predicate:Dda_presburger.Predicate.t ->
  graphs:(string * string Dda_graph.Graph.t) list ->
  unit ->
  case list

val all_correct : case list -> bool

val pp_case : Format.formatter -> case -> unit

(** {1 Graph suites} *)

val suite :
  ?alphabet:string list ->
  ?max_nodes:int ->
  ?bounded_degree:int option ->
  unit ->
  (string * string Dda_graph.Graph.t) list
(** A deterministic suite of named labelled graphs: all label counts over
    the alphabet (default [\["a"; "b"\]]) with 3..[max_nodes] (default 5)
    nodes, each placed on several topologies (clique, cycle, line, star);
    [bounded_degree = Some k] keeps only graphs of degree at most [k]. *)
