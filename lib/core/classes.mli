(** The classification of distributed automata (Section 2.2, Figure 1).

    Esparza and Reiter classify automata by detection (non-counting [d] /
    counting [D]), acceptance (halting [a] / stable consensus [A]),
    selection (liberal / exclusive / synchronous — provably irrelevant for
    decision power) and fairness (adversarial [f] / pseudo-stochastic [F]).
    The 24 combinations collapse to seven equivalence classes; this module
    encodes the classes and the paper's characterisation of their decision
    power over labelling properties, on arbitrary and on bounded-degree
    graphs (the two tables of Figure 1). *)

type detection = Non_counting | Counting
type acceptance = Halting | Stable_consensus
type fairness = Adversarial | Pseudo_stochastic

type t = { detection : detection; acceptance : acceptance; fairness : fairness }

val all : t list
(** All eight [xyz] combinations. *)

val name : t -> string
(** e.g. ["DAf"]. *)

val of_name : string -> t option
(** Inverse of {!name}. *)

val equivalent : t -> t -> bool
(** The collapse of [16]: [daf] and [daF] coincide (halting non-counting
    automata gain nothing from pseudo-stochastic fairness); every other pair
    of distinct combinations is distinct.  The seven equivalence classes of
    Figure 1 are the quotient. *)

val representatives : t list
(** One representative per equivalence class (seven entries, [daF]
    dropped). *)

(** {1 Decision power (Figure 1)} *)

type power =
  | Trivial  (** only ∅ and the full set *)
  | Cutoff_1  (** properties depending on [⌈L⌉₁] *)
  | Cutoff  (** properties depending on [⌈L⌉_K] for some K *)
  | NL  (** nondeterministic log-space *)
  | ISM_bounded
      (** bounded-degree DAf: between the homogeneous threshold predicates
          (lower bound, Prop 6.3) and invariance under scalar multiplication
          (upper bound, Cor 3.3) — the paper leaves the exact power open *)
  | NSPACE_n  (** nondeterministic linear space *)

val power_name : power -> string

val power_arbitrary : t -> power
(** Decision power over labelling properties on arbitrary graphs (middle
    column of Figure 1). *)

val power_bounded_degree : t -> power
(** Decision power on degree-bounded graphs, [k >= 3] (right column of
    Figure 1). *)

val can_decide_majority : t -> bounded_degree:bool -> bool
(** The paper's running question: exactly DAF on arbitrary graphs; DAf, dAF
    and DAF on bounded-degree graphs. *)

val pp : Format.formatter -> t -> unit
