(** Spill-to-disk byte arenas for the external-memory engine.

    An arena is an append-only byte store cut into fixed-capacity segments.
    Sealed segments are immutable; under memory pressure the least recently
    used one is written once to a backing file under [_dda_spill/] (or
    [$DDA_SPILL_DIR]) and dropped from RAM, to be faulted back in on
    demand.  All arenas sharing a {!budget} compete for the same byte
    limit, so eviction is global across the engine's config and edge
    stores.

    Appends must come from a single thread; reads of already-committed
    records may come from many domains concurrently (fault-in is
    lock-protected, resident reads are lock-free).  Records never span
    segments.  Backing files use explicit [read]/[write] I/O, not [mmap]:
    mapped pages count toward RSS, which would defeat [--mem-budget]'s
    purpose of bounding peak resident memory. *)

type t

type budget

val budget_create : limit:int -> budget
(** A byte budget shared by every arena subsequently {!create}d on it. *)

type spill_stats = {
  mem_budget : int;
  segments_out : int;  (** Segments evicted from RAM (writes + re-drops). *)
  segments_in : int;  (** Segments faulted back in. *)
  bytes_out : int;  (** Bytes actually written to the spill files. *)
  bytes_in : int;  (** Bytes read back. *)
  resident_peak : int;  (** Peak in-core bytes across the budget's arenas. *)
}

val budget_stats : budget -> spill_stats

val create : budget -> name:string -> seg_bytes:int -> t
(** A fresh arena spilling to [<spill dir>/pid.<pid>/<name>.seg].  The file
    is created lazily on first eviction and removed at process exit. *)

val append : t -> Bytes.t -> int -> int -> int
(** [append a src off len] commits one record and returns its global
    position.  A record that does not fit in the tail segment seals it
    (leaving slack) and opens a fresh one — positions are segment-aligned
    addresses, not densely packed byte counts.
    @raise Invalid_argument if [len] exceeds the segment capacity. *)

val view : t -> int -> Bytes.t * int
(** [view a pos] is the segment holding [pos] (faulted in if necessary) and
    the offset of [pos] within it; the record starting there is guaranteed
    to lie entirely inside the returned [Bytes]. *)

val read_u32 : t -> int -> int
(** Little-endian unsigned 32-bit read at a global position (the position
    must have been returned by a 4-byte [append], so it cannot straddle a
    segment boundary when [seg_bytes] is a multiple of 4). *)

val length : t -> int
(** Global position one past the last committed byte. *)

val release : t -> unit
(** Drop the arena's in-core segments, close and forget its backing file.
    The arena must not be used afterwards. *)

(** {2 Varints}

    LEB128 encoding helpers for the engine's delta-encoded configuration
    records (also exercised directly by the codec round-trip tests). *)

val varint_max : int
(** Max encoded size of one varint, in bytes. *)

val put_varint : Bytes.t -> int -> int -> int
(** [put_varint b pos v] writes non-negative [v] at [pos], returning the
    position after it.  @raise Invalid_argument on negative input. *)

val get_varint : Bytes.t -> int -> int * int
(** [get_varint b pos] reads a varint at [pos], returning it and the
    position after it. *)

(** {2 Live residency gauges}

    Process-global, read by the service stats plane
    ([dda_engine_resident_bytes] / [dda_engine_spill_segments]). *)

val resident_bytes : unit -> int
(** Bytes currently held in core across all live arenas. *)

val spill_segments : unit -> int
(** Cumulative segments evicted since process start. *)
